/**
 * @file
 * Error/status reporting in the gem5 tradition: panic() for internal
 * simulator bugs, fatal() for user/configuration errors (clean exit),
 * warn()/inform() for non-fatal diagnostics.
 *
 * panic() (and DMT_ASSERT) throws SimError rather than aborting, so
 * harnesses that sweep many configurations can catch one wedged or
 * miscomputing run, log it, and keep going.  Only main()-level entry
 * points translate an uncaught SimError into a process exit.
 */

#ifndef DMT_COMMON_LOG_HH
#define DMT_COMMON_LOG_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

namespace dmt
{

/** Severity levels accepted by the message sink. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * An unrecoverable internal simulator error (a bug or a tripped
 * invariant), thrown by panic() / DMT_ASSERT.  Besides the human
 * message it can carry a machine-readable JSON post-mortem snapshot of
 * the engine state at the point of failure (see src/fault/postmortem).
 */
class SimError : public std::exception
{
  public:
    explicit SimError(std::string message, std::string details_json = "")
        : msg(std::move(message)), details(std::move(details_json))
    {
    }

    const char *what() const noexcept override { return msg.c_str(); }

    /** The one-line panic message. */
    const std::string &message() const { return msg; }

    /** JSON post-mortem document; empty when none was attached. */
    const std::string &detailsJson() const { return details; }

    bool hasDetails() const { return !details.empty(); }

  private:
    std::string msg;
    std::string details;
};

/**
 * Report an unrecoverable internal error (a simulator bug) and throw
 * SimError.  Never returns normally.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() with a machine-readable post-mortem attached. */
[[noreturn]] void panicWithDetails(std::string details_json,
                                   const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Report an unrecoverable user error (bad configuration, bad input) and
 * exit with status 1. Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by quiet benchmark runs). */
void setLogQuiet(bool quiet);

/** @return true when warn()/inform() are suppressed. */
bool logQuiet();

/** Implementation helper for DMT_ASSERT; never call directly. */
[[noreturn]] void panicAssert(const char *cond, const char *file, int line,
                              const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * panic() unless @p cond holds.  Used for internal invariants that are
 * cheap enough to keep on in release builds.
 */
#define DMT_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::dmt::panicAssert(#cond, __FILE__, __LINE__, "" __VA_ARGS__);  \
        }                                                                   \
    } while (0)

} // namespace dmt

#endif // DMT_COMMON_LOG_HH
