#include "common/env.hh"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/log.hh"
#include "common/strutil.hh"

namespace dmt
{

bool
parseU64(std::string_view s, u64 *out)
{
    s = trim(s);
    if (s.empty())
        return false;
    u64 v = 0;
    const char *first = s.data();
    const char *last = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(first, last, v, 10);
    if (ec != std::errc{} || ptr != last)
        return false;
    *out = v;
    return true;
}

bool
parseF64(std::string_view s, double *out)
{
    s = trim(s);
    if (s.empty())
        return false;
    // strtod needs NUL termination; the knob strings are tiny.
    const std::string z(s);
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(z.c_str(), &end);
    if (end != z.c_str() + z.size() || errno == ERANGE
        || !std::isfinite(v)) {
        return false;
    }
    *out = v;
    return true;
}

u64
parseEnvU64(const char *name, u64 def, u64 min_value, u64 max_value)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return def;
    u64 v = 0;
    if (!parseU64(env, &v))
        fatal("%s: '%s' is not a valid unsigned integer", name, env);
    if (v < min_value || v > max_value) {
        fatal("%s: %llu out of range [%llu, %llu]", name,
              static_cast<unsigned long long>(v),
              static_cast<unsigned long long>(min_value),
              static_cast<unsigned long long>(max_value));
    }
    return v;
}

double
parseEnvF64(const char *name, double def, double min_value,
            double max_value)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return def;
    double v = 0.0;
    if (!parseF64(env, &v))
        fatal("%s: '%s' is not a valid number", name, env);
    if (v < min_value || v > max_value)
        fatal("%s: %g out of range [%g, %g]", name, v, min_value,
              max_value);
    return v;
}

} // namespace dmt
