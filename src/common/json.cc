#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace dmt
{

// ---------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------

void
JsonWriter::beforeValue()
{
    DMT_ASSERT(!(any && depth == 0), "value after complete document");
    if (depth > 0 && stack[static_cast<size_t>(depth - 1)] == 'o') {
        DMT_ASSERT(have_key, "object value without a key");
        have_key = false;
    } else if (need_comma) {
        out += ',';
    }
    need_comma = true;
    any = true;
}

void
JsonWriter::appendEscaped(std::string_view s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out += '{';
    stack.push_back('o');
    ++depth;
    need_comma = false;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    DMT_ASSERT(depth > 0 && stack[static_cast<size_t>(depth - 1)] == 'o',
               "endObject outside an object");
    DMT_ASSERT(!have_key, "dangling key at endObject");
    out += '}';
    stack.pop_back();
    --depth;
    need_comma = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out += '[';
    stack.push_back('a');
    ++depth;
    need_comma = false;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    DMT_ASSERT(depth > 0 && stack[static_cast<size_t>(depth - 1)] == 'a',
               "endArray outside an array");
    out += ']';
    stack.pop_back();
    --depth;
    need_comma = true;
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    DMT_ASSERT(depth > 0 && stack[static_cast<size_t>(depth - 1)] == 'o',
               "key outside an object");
    DMT_ASSERT(!have_key, "two keys in a row");
    if (need_comma)
        out += ',';
    appendEscaped(k);
    out += ':';
    have_key = true;
    need_comma = false;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    appendEscaped(v);
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return nullValue();
    beforeValue();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    out += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(u64 v)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(i64 v)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return *this;
}

JsonWriter &
JsonWriter::rawValue(std::string_view json)
{
    DMT_ASSERT(!json.empty(), "rawValue needs a serialized value");
    beforeValue();
    out += json;
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    beforeValue();
    out += "null";
    return *this;
}

const std::string &
JsonWriter::str() const
{
    DMT_ASSERT(complete(), "JSON document incomplete (depth %d)", depth);
    return out;
}

// ---------------------------------------------------------------------
// JsonValue parser
// ---------------------------------------------------------------------

namespace
{
constexpr int kMaxDepth = 256;
} // namespace

/** Recursive-descent parser over a string_view. */
class JsonParser
{
  public:
    JsonParser(std::string_view text) : s(text) {}

    bool
    run(JsonValue *out, std::string *err)
    {
        if (!parseValue(out, 0)) {
            if (err)
                *err = error + " at offset " + std::to_string(pos);
            return false;
        }
        skipWs();
        if (pos != s.size()) {
            if (err)
                *err = "trailing characters at offset "
                    + std::to_string(pos);
            return false;
        }
        return true;
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size()
               && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n'
                   || s[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    fail(const char *msg)
    {
        if (error.empty())
            error = msg;
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (s.substr(pos, word.size()) != word)
            return fail("bad literal");
        pos += word.size();
        return true;
    }

    bool
    parseValue(JsonValue *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= s.size())
            return fail("unexpected end of input");
        switch (s[pos]) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"':
            out->type_ = JsonValue::Type::String;
            return parseString(&out->str_);
          case 't':
            out->type_ = JsonValue::Type::Bool;
            out->bool_ = true;
            return literal("true");
          case 'f':
            out->type_ = JsonValue::Type::Bool;
            out->bool_ = false;
            return literal("false");
          case 'n':
            out->type_ = JsonValue::Type::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseNumber(JsonValue *out)
    {
        const size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size()
               && (std::isdigit(static_cast<unsigned char>(s[pos]))
                   || s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E'
                   || s[pos] == '+' || s[pos] == '-')) {
            ++pos;
        }
        if (pos == start)
            return fail("expected a value");
        const std::string text(s.substr(start, pos - start));
        char *end = nullptr;
        out->num = std::strtod(text.c_str(), &end);
        if (end != text.c_str() + text.size())
            return fail("malformed number");
        out->type_ = JsonValue::Type::Number;
        return true;
    }

    void
    appendUtf8(std::string *out, u32 cp)
    {
        if (cp < 0x80) {
            *out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            *out += static_cast<char>(0xC0 | (cp >> 6));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            *out += static_cast<char>(0xE0 | (cp >> 12));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            *out += static_cast<char>(0xF0 | (cp >> 18));
            *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parseHex4(u32 *out)
    {
        if (pos + 4 > s.size())
            return fail("truncated \\u escape");
        u32 v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = s[pos + static_cast<size_t>(i)];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<u32>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<u32>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<u32>(c - 'A' + 10);
            else
                return fail("bad \\u escape");
        }
        pos += 4;
        *out = v;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        ++pos; // opening quote
        out->clear();
        while (true) {
            if (pos >= s.size())
                return fail("unterminated string");
            const char c = s[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (pos >= s.size())
                return fail("truncated escape");
            const char e = s[pos++];
            switch (e) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'n': *out += '\n'; break;
              case 'r': *out += '\r'; break;
              case 't': *out += '\t'; break;
              case 'u': {
                  u32 cp;
                  if (!parseHex4(&cp))
                      return false;
                  if (cp >= 0xD800 && cp < 0xDC00
                      && pos + 1 < s.size() && s[pos] == '\\'
                      && s[pos + 1] == 'u') {
                      pos += 2;
                      u32 low;
                      if (!parseHex4(&low))
                          return false;
                      cp = 0x10000 + ((cp - 0xD800) << 10)
                          + (low - 0xDC00);
                  }
                  appendUtf8(out, cp);
                  break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool
    parseArray(JsonValue *out, int depth)
    {
        ++pos; // '['
        out->type_ = JsonValue::Type::Array;
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            out->elems.emplace_back();
            if (!parseValue(&out->elems.back(), depth + 1))
                return false;
            skipWs();
            if (pos >= s.size())
                return fail("unterminated array");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue *out, int depth)
    {
        ++pos; // '{'
        out->type_ = JsonValue::Type::Object;
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"')
                return fail("expected object key");
            std::string k;
            if (!parseString(&k))
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'");
            ++pos;
            out->membs.emplace_back(std::move(k), JsonValue{});
            if (!parseValue(&out->membs.back().second, depth + 1))
                return false;
            skipWs();
            if (pos >= s.size())
                return fail("unterminated object");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    std::string_view s;
    size_t pos = 0;
    std::string error;
};

bool
JsonValue::parse(std::string_view text, JsonValue *out, std::string *err)
{
    *out = JsonValue{};
    JsonParser p(text);
    return p.run(out, err);
}

bool
JsonValue::asBool() const
{
    DMT_ASSERT(type_ == Type::Bool, "not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    DMT_ASSERT(type_ == Type::Number, "not a number");
    return num;
}

const std::string &
JsonValue::asString() const
{
    DMT_ASSERT(type_ == Type::String, "not a string");
    return str_;
}

const JsonValue *
JsonValue::find(const std::string &k) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[key, v] : membs) {
        if (key == k)
            return &v;
    }
    return nullptr;
}

void
JsonValue::writeTo(JsonWriter &w) const
{
    switch (type_) {
      case Type::Null: w.nullValue(); break;
      case Type::Bool: w.value(bool_); break;
      case Type::Number: w.value(num); break;
      case Type::String: w.value(std::string_view(str_)); break;
      case Type::Array:
        w.beginArray();
        for (const JsonValue &v : elems)
            v.writeTo(w);
        w.endArray();
        break;
      case Type::Object:
        w.beginObject();
        for (const auto &[k, v] : membs) {
            w.key(k);
            v.writeTo(w);
        }
        w.endObject();
        break;
    }
}

std::string
JsonValue::dump() const
{
    JsonWriter w;
    writeTo(w);
    return w.str();
}

} // namespace dmt
