/**
 * @file
 * Deterministic pseudo-random number generator (splitmix64 core) used by
 * workload generators and property tests.  Not std::mt19937 so that
 * sequences are stable across platforms and library versions.
 */

#ifndef DMT_COMMON_RNG_HH
#define DMT_COMMON_RNG_HH

#include "common/types.hh"

namespace dmt
{

/**
 * Splitmix64-based deterministic RNG.  Cheap, well distributed, and
 * reproducible everywhere.
 */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /** Next raw 64-bit value. */
    u64 next64();

    /** Next 32-bit value. */
    u32 next32() { return static_cast<u32>(next64() >> 32); }

    /** Uniform value in [0, bound) — bound must be nonzero. */
    u64 below(u64 bound);

    /** Uniform value in [lo, hi] inclusive. */
    i64 range(i64 lo, i64 hi);

    /** Bernoulli draw with probability @p p (0..1). */
    bool chance(double p);

  private:
    u64 state;
};

} // namespace dmt

#endif // DMT_COMMON_RNG_HH
