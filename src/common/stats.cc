#include "common/stats.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/json.hh"
#include "common/log.hh"

namespace dmt
{

void
Average::sample(double v)
{
    if (n == 0) {
        lo = hi = v;
    } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    sum += v;
    ++n;
}

void
Average::reset()
{
    sum = 0.0;
    lo = hi = 0.0;
    n = 0;
}

void
Average::merge(const Average &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        lo = other.lo;
        hi = other.hi;
    } else {
        lo = std::min(lo, other.lo);
        hi = std::max(hi, other.hi);
    }
    sum += other.sum;
    n += other.n;
}

Histogram::Histogram(double lo_, double hi_, int nbuckets)
    : lo(lo_), hi(hi_), buckets(static_cast<size_t>(nbuckets), 0)
{
    DMT_ASSERT(nbuckets > 0 && hi_ > lo_, "bad histogram shape");
}

void
Histogram::sample(double v)
{
    const int n = numBuckets();
    double frac = (v - lo) / (hi - lo);
    int idx = static_cast<int>(frac * n);
    idx = std::clamp(idx, 0, n - 1);
    ++buckets[static_cast<size_t>(idx)];
    ++total;
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    total = 0;
}

void
Histogram::merge(const Histogram &other)
{
    DMT_ASSERT(lo == other.lo && hi == other.hi
                   && buckets.size() == other.buckets.size(),
               "merging histograms of different shape");
    for (size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    total += other.total;
}

double
Histogram::bucketLow(int i) const
{
    return lo + (hi - lo) * i / numBuckets();
}

double
Histogram::bucketHigh(int i) const
{
    return lo + (hi - lo) * (i + 1) / numBuckets();
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    os << "[";
    for (int i = 0; i < numBuckets(); ++i) {
        if (i)
            os << " ";
        os << buckets[static_cast<size_t>(i)];
    }
    os << "] n=" << total;
    return os.str();
}

StatGroup::StatGroup(std::string name)
    : name_(std::move(name))
{
}

void
StatGroup::addCounter(const std::string &name, const Counter *c,
                      const std::string &desc)
{
    counters.push_back({name, c, desc});
}

void
StatGroup::addAverage(const std::string &name, const Average *a,
                      const std::string &desc)
{
    averages.push_back({name, a, desc});
}

void
StatGroup::addHistogram(const std::string &name, const Histogram *h,
                        const std::string &desc)
{
    histograms.push_back({name, h, desc});
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    char line[256];
    for (const auto &e : counters) {
        std::snprintf(line, sizeof(line), "%s.%-32s %12llu  # %s\n",
                      name_.c_str(), e.name.c_str(),
                      static_cast<unsigned long long>(e.counter->value()),
                      e.desc.c_str());
        os << line;
    }
    for (const auto &e : averages) {
        std::snprintf(line, sizeof(line),
                      "%s.%-32s %12.3f  # %s (n=%llu min=%.1f max=%.1f)\n",
                      name_.c_str(), e.name.c_str(), e.avg->mean(),
                      e.desc.c_str(),
                      static_cast<unsigned long long>(e.avg->count()),
                      e.avg->min(), e.avg->max());
        os << line;
    }
    for (const auto &e : histograms) {
        std::snprintf(line, sizeof(line), "%s.%-32s ", name_.c_str(),
                      e.name.c_str());
        os << line << e.hist->toString() << "  # " << e.desc << "\n";
    }
    return os.str();
}

void
StatGroup::jsonOn(JsonWriter &w) const
{
    w.beginObject();
    w.key("name").value(std::string_view(name_));

    w.key("counters").beginObject();
    for (const auto &e : counters)
        w.key(e.name).value(e.counter->value());
    w.endObject();

    w.key("averages").beginObject();
    for (const auto &e : averages) {
        w.key(e.name).beginObject();
        w.key("mean").value(e.avg->mean());
        w.key("min").value(e.avg->min());
        w.key("max").value(e.avg->max());
        w.key("count").value(e.avg->count());
        w.endObject();
    }
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &e : histograms) {
        const Histogram &h = *e.hist;
        w.key(e.name).beginObject();
        w.key("lo").value(h.bucketLow(0));
        w.key("hi").value(h.bucketHigh(h.numBuckets() - 1));
        w.key("total").value(h.count());
        w.key("buckets").beginArray();
        for (int i = 0; i < h.numBuckets(); ++i)
            w.value(h.bucketCount(i));
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

} // namespace dmt
