/**
 * @file
 * Checked parsing for the numeric DMT_* environment knobs.  The raw
 * strtoull/atoi idiom silently accepts trailing garbage ("60k" parses
 * as 60) and wraps on overflow; every knob that configures a run now
 * funnels through these helpers, which reject both loudly.
 *
 * An unset or empty variable yields the caller's default.  A malformed
 * or out-of-range value is a *user* error, so it reports via fatal()
 * (clean exit), never a silent fallback that would make a sweep
 * quietly measure the wrong thing.
 */

#ifndef DMT_COMMON_ENV_HH
#define DMT_COMMON_ENV_HH

#include <string_view>

#include "common/types.hh"

namespace dmt
{

/**
 * Strict unsigned parse: the entire string must be a decimal u64
 * (surrounding whitespace tolerated, no sign, no suffix).
 * @retval true on success, writing the value through @p out.
 */
bool parseU64(std::string_view s, u64 *out);

/**
 * Strict floating-point parse: the entire string must be a finite
 * decimal number (surrounding whitespace tolerated).
 * @retval true on success, writing the value through @p out.
 */
bool parseF64(std::string_view s, double *out);

/**
 * Read the environment variable @p name as a u64 in [@p min, @p max].
 * Unset or empty returns @p def; garbage, overflow or a value outside
 * the range is fatal().
 */
u64 parseEnvU64(const char *name, u64 def, u64 min_value = 0,
                u64 max_value = ~u64{0});

/**
 * Read the environment variable @p name as a finite double in
 * [@p min, @p max].  Unset or empty returns @p def; garbage or a value
 * outside the range is fatal().
 */
double parseEnvF64(const char *name, double def, double min_value,
                   double max_value);

} // namespace dmt

#endif // DMT_COMMON_ENV_HH
