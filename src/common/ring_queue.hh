/**
 * @file
 * Growable circular FIFO.  A drop-in replacement for the std::deque
 * uses on the simulator's hot path: deque allocates and frees a chunk
 * every few dozen push/pops, so a steady-state engine cycle churns the
 * allocator even when queue depths are stable.  RingQueue keeps one
 * contiguous power-of-two buffer that only ever grows; in steady state
 * every operation is an index update.
 *
 * Slots are never destroyed on pop — pop_front()/pop_back() just move
 * the indexes, and push_back() assigns into the reused slot.  For
 * element types that own capacity this means the slot's capacity is
 * recycled; for flat types it is simply cheap.  clear() likewise keeps
 * the buffer.
 */

#ifndef DMT_COMMON_RING_QUEUE_HH
#define DMT_COMMON_RING_QUEUE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace dmt
{

template <typename T>
class RingQueue
{
  public:
    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }

    T &
    front()
    {
        DMT_ASSERT(count_ > 0, "ring queue empty");
        return buf_[head_];
    }
    const T &
    front() const
    {
        DMT_ASSERT(count_ > 0, "ring queue empty");
        return buf_[head_];
    }

    T &
    back()
    {
        DMT_ASSERT(count_ > 0, "ring queue empty");
        return buf_[slot(count_ - 1)];
    }
    const T &
    back() const
    {
        DMT_ASSERT(count_ > 0, "ring queue empty");
        return buf_[slot(count_ - 1)];
    }

    /** @p i counts from the front: [0] == front(). */
    T &
    operator[](size_t i)
    {
        DMT_ASSERT(i < count_, "ring queue index out of range");
        return buf_[slot(i)];
    }
    const T &
    operator[](size_t i) const
    {
        DMT_ASSERT(i < count_, "ring queue index out of range");
        return buf_[slot(i)];
    }

    void
    push_back(const T &v)
    {
        if (count_ == buf_.size())
            grow();
        buf_[slot(count_)] = v;
        ++count_;
    }

    void
    push_back(T &&v)
    {
        if (count_ == buf_.size())
            grow();
        buf_[slot(count_)] = std::move(v);
        ++count_;
    }

    void
    pop_front()
    {
        DMT_ASSERT(count_ > 0, "ring queue empty");
        head_ = next(head_);
        --count_;
    }

    void
    pop_back()
    {
        DMT_ASSERT(count_ > 0, "ring queue empty");
        --count_;
    }

    /** Keeps the buffer (and each slot's own capacity) for reuse. */
    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    /** Pre-size the buffer so the first @p n pushes cannot allocate. */
    void
    reserve(size_t n)
    {
        if (n > buf_.size())
            rebuild(capacityFor(n));
    }

    size_t capacity() const { return buf_.size(); }

    /**
     * Minimal front-to-back iterator so range-for call sites written
     * against std::deque keep compiling.  Indexes, not pointers, so it
     * stays valid across the wrap point.
     */
    template <typename Q, typename V>
    class Iter
    {
      public:
        Iter(Q *q, size_t i) : q_(q), i_(i) {}
        V &operator*() const { return (*q_)[i_]; }
        V *operator->() const { return &(*q_)[i_]; }
        Iter &
        operator++()
        {
            ++i_;
            return *this;
        }
        bool operator==(const Iter &o) const { return i_ == o.i_; }
        bool operator!=(const Iter &o) const { return i_ != o.i_; }

      private:
        Q *q_;
        size_t i_;
    };

    using iterator = Iter<RingQueue, T>;
    using const_iterator = Iter<const RingQueue, const T>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, count_); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, count_); }

  private:
    size_t
    slot(size_t i) const
    {
        // buf_.size() is always a power of two once non-empty.
        return (head_ + i) & (buf_.size() - 1);
    }

    size_t
    next(size_t i) const
    {
        return (i + 1) & (buf_.size() - 1);
    }

    static size_t
    capacityFor(size_t n)
    {
        size_t cap = 8;
        while (cap < n)
            cap *= 2;
        return cap;
    }

    void
    grow()
    {
        rebuild(buf_.empty() ? 8 : buf_.size() * 2);
    }

    /** Re-home the live elements at the front of a larger buffer. */
    void
    rebuild(size_t cap)
    {
        std::vector<T> bigger(cap);
        for (size_t i = 0; i < count_; ++i)
            bigger[i] = std::move(buf_[slot(i)]);
        buf_ = std::move(bigger);
        head_ = 0;
    }

    std::vector<T> buf_;
    size_t head_ = 0;
    size_t count_ = 0;
};

} // namespace dmt

#endif // DMT_COMMON_RING_QUEUE_HH
