#include "common/rng.hh"

#include "common/log.hh"

namespace dmt
{

u64
Rng::next64()
{
    state += 0x9e3779b97f4a7c15ull;
    u64 z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

u64
Rng::below(u64 bound)
{
    DMT_ASSERT(bound != 0, "Rng::below(0)");
    return next64() % bound;
}

i64
Rng::range(i64 lo, i64 hi)
{
    DMT_ASSERT(lo <= hi, "Rng::range lo > hi");
    const u64 span = static_cast<u64>(hi - lo) + 1;
    return lo + static_cast<i64>(span == 0 ? next64() : below(span));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return static_cast<double>(next64() >> 11) * (1.0 / 9007199254740992.0)
        < p;
}

} // namespace dmt
