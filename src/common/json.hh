/**
 * @file
 * Dependency-free JSON support: a streaming writer (JsonWriter) used to
 * serialize stats, configurations and trace artifacts, and a small
 * recursive-descent parser (JsonValue) used by tests and tooling to
 * validate what the writer and the trace sinks produce.
 */

#ifndef DMT_COMMON_JSON_HH
#define DMT_COMMON_JSON_HH

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace dmt
{

/**
 * Streaming JSON writer.  Values and containers are emitted in call
 * order; the writer tracks nesting and inserts commas, so callers only
 * describe structure:
 *
 *   JsonWriter w;
 *   w.beginObject().key("cycles").value(u64{100}).endObject();
 *   file << w.str();
 *
 * Doubles that are not finite serialize as null (JSON has no NaN).
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next call must emit its value. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &value(u64 v);
    JsonWriter &value(i64 v);
    JsonWriter &value(int v) { return value(static_cast<i64>(v)); }
    JsonWriter &value(unsigned v) { return value(static_cast<u64>(v)); }
    JsonWriter &nullValue();

    /**
     * Splice @p json — an already-serialized JSON value — verbatim into
     * the document.  This is how the serve layer embeds cached
     * canonical RunResult documents into replies without a parse →
     * re-serialize round trip (which would not be byte-identical: the
     * parser stores numbers as doubles).  The caller guarantees
     * @p json is one complete, valid JSON value.
     */
    JsonWriter &rawValue(std::string_view json);

    /** True once a value was written and every container is closed. */
    bool complete() const { return any && depth == 0; }

    /** The document text; asserts the document is complete. */
    const std::string &str() const;

  private:
    void beforeValue();
    void appendEscaped(std::string_view s);

    std::string out;
    /** One frame per open container: 'o' object, 'a' array. */
    std::vector<char> stack{};
    int depth = 0;
    bool any = false;        ///< something was ever written
    bool need_comma = false;
    bool have_key = false;
};

/** A parsed JSON document node. */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    /**
     * Parse @p text as one JSON document (trailing whitespace allowed).
     * @retval true on success; otherwise @p err (if given) describes
     * the failure and its offset.
     */
    static bool parse(std::string_view text, JsonValue *out,
                      std::string *err = nullptr);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }

    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array elements (empty unless type is Array). */
    const std::vector<JsonValue> &elements() const { return elems; }

    /** Object members in document order (empty unless Object). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return membs;
    }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &k) const;

    /** Re-serialize through JsonWriter (canonical round-trip form). */
    void writeTo(JsonWriter &w) const;
    std::string dump() const;

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double num = 0.0;
    std::string str_;
    std::vector<JsonValue> elems;
    std::vector<std::pair<std::string, JsonValue>> membs;

    friend class JsonParser;
};

} // namespace dmt

#endif // DMT_COMMON_JSON_HH
