/**
 * @file
 * Small bit-manipulation helpers shared by the ISA encoder and the
 * predictor index hashes.
 */

#ifndef DMT_COMMON_BITUTILS_HH
#define DMT_COMMON_BITUTILS_HH

#include "common/types.hh"

namespace dmt
{

/** Extract bits [hi:lo] (inclusive) of @p value. */
constexpr u32
bits(u32 value, int hi, int lo)
{
    const u32 width = static_cast<u32>(hi - lo + 1);
    const u32 mask = width >= 32 ? ~0u : ((1u << width) - 1u);
    return (value >> lo) & mask;
}

/** Insert @p field into bits [hi:lo] of a zero background. */
constexpr u32
insertBits(u32 field, int hi, int lo)
{
    const u32 width = static_cast<u32>(hi - lo + 1);
    const u32 mask = width >= 32 ? ~0u : ((1u << width) - 1u);
    return (field & mask) << lo;
}

/** Sign-extend the low @p width bits of @p value to 32 bits. */
constexpr i32
signExtend(u32 value, int width)
{
    const u32 shift = static_cast<u32>(32 - width);
    return static_cast<i32>(value << shift) >> shift;
}

/** @return true when @p value is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(u64 value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** log2 of a power of two. */
constexpr int
floorLog2(u64 value)
{
    int result = 0;
    while (value > 1) {
        value >>= 1;
        ++result;
    }
    return result;
}

/** Fold a 32-bit value down to @p bits_out bits by xor-folding. */
constexpr u32
foldXor(u32 value, int bits_out)
{
    u32 result = 0;
    while (value != 0) {
        result ^= value & ((1u << bits_out) - 1u);
        value >>= bits_out;
    }
    return result;
}

} // namespace dmt

#endif // DMT_COMMON_BITUTILS_HH
