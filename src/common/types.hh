/**
 * @file
 * Fundamental fixed-width type aliases used throughout the simulator.
 */

#ifndef DMT_COMMON_TYPES_HH
#define DMT_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace dmt
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Byte address in the simulated machine's 32-bit address space. */
using Addr = u32;

/** Simulation time in cycles. */
using Cycle = u64;

/** Logical (architectural) register index, 0..31. */
using LogReg = u8;

/** Physical register index into the shared physical register file. */
using PhysReg = i32;

/** Sentinel for "no physical register". */
constexpr PhysReg kNoPhysReg = -1;

/** Hardware thread-context index. */
using ThreadId = i32;

/** Sentinel for "no thread". */
constexpr ThreadId kNoThread = -1;

/** Number of architectural integer registers. */
constexpr int kNumLogRegs = 32;

} // namespace dmt

#endif // DMT_COMMON_TYPES_HH
