#include "common/strutil.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace dmt
{

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
splitFields(std::string_view s, std::string_view seps)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (seps.find(c) != std::string_view::npos) {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::vector<std::string>
splitLines(std::string_view s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == '\n') {
            out.push_back(cur);
            cur.clear();
        } else if (c != '\r') {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i]))
            != std::tolower(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
parseInt(std::string_view s, i64 *out)
{
    s = trim(s);
    if (s.empty())
        return false;

    bool neg = false;
    if (s.front() == '-' || s.front() == '+') {
        neg = s.front() == '-';
        s.remove_prefix(1);
        if (s.empty())
            return false;
    }

    int base = 10;
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
        base = 16;
        s.remove_prefix(2);
    } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
        base = 2;
        s.remove_prefix(2);
    }
    if (s.empty())
        return false;

    i64 value = 0;
    for (char c : s) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return false;
        if (digit >= base)
            return false;
        value = value * base + digit;
    }
    *out = neg ? -value : value;
    return true;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);

    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<size_t>(needed));
    }
    va_end(ap2);
    return out;
}

} // namespace dmt
