/**
 * @file
 * Lightweight statistics primitives: named scalar counters, averages, and
 * fixed-bucket histograms, grouped in a StatGroup that can render itself
 * as text.  The DMT engine exposes all of its counters through this.
 */

#ifndef DMT_COMMON_STATS_HH
#define DMT_COMMON_STATS_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace dmt
{

class JsonWriter;

/** A named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator+=(u64 n) { value_ += n; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void reset() { value_ = 0; }

    /** Accumulate another counter (interval aggregation). */
    void merge(const Counter &other) { value_ += other.value_; }

    u64 value() const { return value_; }

  private:
    u64 value_ = 0;
};

/** Running mean of sampled values (e.g. thread sizes). */
class Average
{
  public:
    void sample(double v);
    void reset();

    /** Pool another average's samples into this one. */
    void merge(const Average &other);

    u64 count() const { return n; }
    double mean() const { return n == 0 ? 0.0 : sum / double(n); }
    double min() const { return n == 0 ? 0.0 : lo; }
    double max() const { return n == 0 ? 0.0 : hi; }

  private:
    double sum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    u64 n = 0;
};

/** Histogram with uniform buckets over [lo, hi); outliers clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, int nbuckets);

    void sample(double v);
    void reset();

    /** Add another histogram's buckets; shapes must match exactly. */
    void merge(const Histogram &other);

    u64 count() const { return total; }
    u64 bucketCount(int i) const { return buckets.at(i); }
    int numBuckets() const { return static_cast<int>(buckets.size()); }
    double bucketLow(int i) const;
    double bucketHigh(int i) const;

    /** Render a compact one-line summary. */
    std::string toString() const;

  private:
    double lo;
    double hi;
    std::vector<u64> buckets;
    u64 total = 0;
};

/**
 * Named collection of stats for reporting.  Members register themselves
 * through add*() and are formatted by dump().
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    void addCounter(const std::string &name, const Counter *c,
                    const std::string &desc);
    void addAverage(const std::string &name, const Average *a,
                    const std::string &desc);
    void addHistogram(const std::string &name, const Histogram *h,
                      const std::string &desc);

    /** Format all registered stats, one per line. */
    std::string dump() const;

    /** Serialize all registered stats as a JSON object. */
    void jsonOn(JsonWriter &w) const;

    const std::string &name() const { return name_; }

  private:
    struct CounterEntry
    {
        std::string name;
        const Counter *counter;
        std::string desc;
    };
    struct AverageEntry
    {
        std::string name;
        const Average *avg;
        std::string desc;
    };
    struct HistogramEntry
    {
        std::string name;
        const Histogram *hist;
        std::string desc;
    };

    std::string name_;
    std::vector<CounterEntry> counters;
    std::vector<AverageEntry> averages;
    std::vector<HistogramEntry> histograms;
};

} // namespace dmt

#endif // DMT_COMMON_STATS_HH
