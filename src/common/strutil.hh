/**
 * @file
 * String helpers used by the assembler and the report formatter.
 */

#ifndef DMT_COMMON_STRUTIL_HH
#define DMT_COMMON_STRUTIL_HH

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace dmt
{

/** Strip leading/trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split on any character in @p seps, dropping empty fields. */
std::vector<std::string> splitFields(std::string_view s,
                                     std::string_view seps);

/** Split @p s into lines (without terminators). */
std::vector<std::string> splitLines(std::string_view s);

/** Case-insensitive equality. */
bool iequals(std::string_view a, std::string_view b);

/** ASCII lowercase copy. */
std::string toLower(std::string_view s);

/**
 * Parse a signed integer literal: decimal, 0x hex, or 0b binary, with
 * optional leading minus.
 * @retval true on success, writing the value through @p out.
 */
bool parseInt(std::string_view s, i64 *out);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace dmt

#endif // DMT_COMMON_STRUTIL_HH
