/**
 * @file
 * In-pipeline dynamic instruction record and its slab allocator.
 *
 * DynInsts live in the level-1 instruction window (the execution
 * pipeline).  A trace-buffer entry can be represented by several
 * DynInsts over its lifetime: the original dispatch plus any recovery
 * re-dispatches; the entry's `uid` identifies which incarnation is the
 * authoritative one — writebacks from superseded incarnations are
 * ignored (this models the paper's tag-match on trace-buffer result
 * writes).
 *
 * References between structures use generation-checked handles
 * (DynRef), so stale wakeup subscriptions after squashes resolve to
 * null instead of dangling.
 */

#ifndef DMT_DMT_DYNINST_HH
#define DMT_DMT_DYNINST_HH

#include <vector>

#include "common/log.hh"
#include "isa/inst.hh"

namespace dmt
{

/** Generation-checked handle to a DynInst slab slot. */
struct DynRef
{
    i32 slot = -1;
    u32 gen = 0;

    bool valid() const { return slot >= 0; }
    bool operator==(const DynRef &) const = default;
};

/** Scheduling state of an in-flight instruction. */
enum class DynState : u8
{
    Waiting,  ///< operands outstanding
    Ready,    ///< in the ready queue
    Issued,   ///< executing on an FU
    Done,     ///< completed (result written back)
};

/** One in-flight instruction in the execution pipeline. */
struct DynInst
{
    DynRef self;

    /** Global dispatch order — issue priority. */
    u64 seq = 0;
    ThreadId tid = kNoThread;
    u32 tgen = 0;
    /** Absolute trace-buffer entry id this incarnation represents. */
    u64 tb_id = 0;
    /** Incarnation id; must match the TB entry's uid to take effect. */
    u32 uid = 0;

    Instruction inst;
    Addr pc = 0;
    bool is_recovery = false;
    bool squashed = false;

    // Operand state.
    u32 src_val[2] = {0, 0};
    bool src_ready[2] = {true, true};
    int n_src_pending = 0;

    // Physical register bookkeeping.
    PhysReg dest_phys = kNoPhysReg;
    /** Previous same-map mapping, freed at early retirement. */
    PhysReg free_on_retire = kNoPhysReg;
    /** When set, dest_phys itself is released at early retirement unless
     *  it is still the thread's current (live-out) mapping. */
    bool recovery_owns_dest = false;

    DynState state = DynState::Waiting;
    /** Memory-dependence throttle: the calendar entry is a retry poll,
     *  not a completion. */
    bool poll_retry = false;
    Cycle fetch_cycle = 0;
    Cycle dispatch_cycle = 0;
    Cycle issue_cycle = 0;
    Cycle complete_cycle = 0;

    // Execution results (filled at issue/complete).
    u32 result = 0;
    Addr mem_addr = 0;
    bool early_retired = false;

    /** Dataflow-prediction delivery targets (thread-input updates to
     *  perform at writeback): packed (tid, tgen, reg). */
    struct DfTarget
    {
        ThreadId tid;
        u32 tgen;
        LogReg reg;
    };
    std::vector<DfTarget> df_targets;

    /** Back to the default state, keeping df_targets' capacity (the
     *  slab recycles slots; assigning DynInst{} would free it). */
    void
    reset()
    {
        self = DynRef{};
        seq = 0;
        tid = kNoThread;
        tgen = 0;
        tb_id = 0;
        uid = 0;
        inst = Instruction{};
        pc = 0;
        is_recovery = false;
        squashed = false;
        src_val[0] = src_val[1] = 0;
        src_ready[0] = src_ready[1] = true;
        n_src_pending = 0;
        dest_phys = kNoPhysReg;
        free_on_retire = kNoPhysReg;
        recovery_owns_dest = false;
        state = DynState::Waiting;
        poll_retry = false;
        fetch_cycle = 0;
        dispatch_cycle = 0;
        issue_cycle = 0;
        complete_cycle = 0;
        result = 0;
        mem_addr = 0;
        early_retired = false;
        df_targets.clear();
    }
};

/** Slab allocator with generation-checked handles. */
class DynPool
{
  public:
    DynInst *
    alloc()
    {
        i32 slot;
        if (!free_slots.empty()) {
            slot = free_slots.back();
            free_slots.pop_back();
        } else {
            slot = static_cast<i32>(slots.size());
            slots.emplace_back(new DynInst);
            // A dataflow predictor entry holds at most kMaxItems (4)
            // targets; reserving up front keeps the first few fills of
            // each pool slot off the heap (reset() keeps capacity).
            slots.back()->df_targets.reserve(8);
            gens.push_back(0);
        }
        DynInst *d = slots[static_cast<size_t>(slot)];
        const u32 gen = gens[static_cast<size_t>(slot)];
        d->reset();
        d->self = DynRef{slot, gen};
        ++live_;
        return d;
    }

    void
    release(DynInst *d)
    {
        const i32 slot = d->self.slot;
        DMT_ASSERT(slot >= 0 && gens[static_cast<size_t>(slot)]
                   == d->self.gen, "double release of DynInst");
        ++gens[static_cast<size_t>(slot)];
        d->self = DynRef{};
        d->df_targets.clear();
        free_slots.push_back(slot);
        --live_;
    }

    /** Resolve a handle; nullptr when stale. */
    DynInst *
    get(DynRef ref)
    {
        if (ref.slot < 0
            || ref.slot >= static_cast<i32>(slots.size())
            || gens[static_cast<size_t>(ref.slot)] != ref.gen) {
            return nullptr;
        }
        return slots[static_cast<size_t>(ref.slot)];
    }

    /** Const handle resolution (invariant auditing). */
    const DynInst *
    get(DynRef ref) const
    {
        return const_cast<DynPool *>(this)->get(ref);
    }

    int live() const { return live_; }

    ~DynPool()
    {
        for (DynInst *d : slots)
            delete d;
    }

    DynPool() = default;
    DynPool(const DynPool &) = delete;
    DynPool &operator=(const DynPool &) = delete;

  private:
    std::vector<DynInst *> slots;
    std::vector<u32> gens;
    std::vector<i32> free_slots;
    int live_ = 0;
};

} // namespace dmt

#endif // DMT_DMT_DYNINST_HH
