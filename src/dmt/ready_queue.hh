/**
 * @file
 * Persistent age-indexed ready structure for doIssue().  The old path
 * rebuilt a (seq, ref) vector and sorted it every cycle; this keeps a
 * binary min-heap keyed by the instruction's unique dispatch seq, so
 * insertion is O(log n), oldest-first extraction is O(log n), and the
 * steady state never allocates (the backing vector only grows).
 *
 * seq values are unique per DynInst, so the heap order is a strict
 * total order: pop order is deterministic and identical to the old
 * sort-by-seq order.  Squashed or already-issued entries are filtered
 * lazily at pop time by the caller, exactly as the old scan did.
 */

#ifndef DMT_DMT_READY_QUEUE_HH
#define DMT_DMT_READY_QUEUE_HH

#include <cstddef>
#include <vector>

#include "common/log.hh"
#include "dmt/dyninst.hh"

namespace dmt
{

class ReadyQueue
{
  public:
    struct Item
    {
        u64 seq = 0;
        DynRef ref;
    };

    bool empty() const { return heap_.empty(); }
    size_t size() const { return heap_.size(); }

    void
    push(u64 seq, DynRef ref)
    {
        heap_.push_back({seq, ref});
        siftUp(heap_.size() - 1);
    }

    /** The oldest (smallest-seq) entry. */
    const Item &
    top() const
    {
        DMT_ASSERT(!heap_.empty(), "top() on empty ready queue");
        return heap_[0];
    }

    void
    pop()
    {
        DMT_ASSERT(!heap_.empty(), "pop() on empty ready queue");
        heap_[0] = heap_.back();
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
    }

    void clear() { heap_.clear(); }

    void reserve(size_t n) { heap_.reserve(n); }

  private:
    void
    siftUp(size_t i)
    {
        while (i > 0) {
            const size_t parent = (i - 1) / 2;
            if (heap_[parent].seq <= heap_[i].seq)
                break;
            std::swap(heap_[parent], heap_[i]);
            i = parent;
        }
    }

    void
    siftDown(size_t i)
    {
        const size_t n = heap_.size();
        for (;;) {
            const size_t l = 2 * i + 1;
            const size_t r = l + 1;
            size_t min = i;
            if (l < n && heap_[l].seq < heap_[min].seq)
                min = l;
            if (r < n && heap_[r].seq < heap_[min].seq)
                min = r;
            if (min == i)
                break;
            std::swap(heap_[i], heap_[min]);
            i = min;
        }
    }

    std::vector<Item> heap_;
};

} // namespace dmt

#endif // DMT_DMT_READY_QUEUE_HH
