/**
 * @file
 * Fully-associative load and store queues with cross-thread memory
 * disambiguation (paper Section 3.5).
 *
 * Entries are allocated at dispatch and keep their unique ids across
 * recovery re-issues — a re-issued load/store simply overwrites its
 * address, which is precisely the property the paper cites for
 * preferring fully-associative queues over set-associative ARBs.
 *
 * Semantics:
 *  - loads issue speculatively; the latest program-order-earlier
 *    executed store with an overlapping address forwards its data
 *    (fully contained), or stalls the load until that store drains to
 *    memory (partial overlap);
 *  - when a store executes (or re-executes with a new address), any
 *    program-order-later load that already issued and either overlaps
 *    the new address or had forwarded from this store under a stale
 *    address/data is reported as a violation → recovery request;
 *  - stores drain to memory in program order after final retirement.
 *
 * The queue does not know thread program order itself; the engine
 * supplies an OrderOracle.
 */

#ifndef DMT_DMT_LSQ_HH
#define DMT_DMT_LSQ_HH

#include <vector>

#include "common/types.hh"
#include "dmt/dyninst.hh"
#include "dmt/word_index.hh"

namespace dmt
{

/** Program-order comparison service provided by the engine. */
class OrderOracle
{
  public:
    virtual ~OrderOracle() = default;

    /** Strictly-before comparison of two dynamic memory operations. */
    virtual bool memBefore(ThreadId tid_a, u64 tb_a, ThreadId tid_b,
                           u64 tb_b) const = 0;
};

/** Load queue entry. */
struct LsqLoad
{
    bool valid = false;
    ThreadId tid = kNoThread;
    u32 tgen = 0;
    u64 tb_id = 0;

    bool issued = false;
    Addr addr = 0;
    u8 bytes = 0;
    /** Store slot forwarded from; -1 when the value came from memory. */
    i32 fwd_store = -1;
    /** Raw (zero-extended) bytes observed, for violation filtering. */
    u32 raw_value = 0;
};

/** Store queue entry. */
struct LsqStore
{
    bool valid = false;
    ThreadId tid = kNoThread;
    u32 tgen = 0;
    u64 tb_id = 0;

    bool executed = false;
    Addr addr = 0;
    u8 bytes = 0;
    u32 data = 0;
    /** Finally retired, waiting for a DCache port to drain. */
    bool retired = false;
    /** Global retirement order (valid when retired); retired stores
     *  precede everything still speculative. */
    u64 retire_seq = 0;

    /** Loads stalled until this store drains (partial overlap). */
    std::vector<DynRef> stall_waiters;
    /** Loads that forwarded from this store (may contain stale ids). */
    std::vector<i32> forwardees;
};

/** The combined load/store queue unit. */
class Lsq
{
  public:
    Lsq(int lq_per_thread, int sq_per_thread, int max_threads);

    // ---- allocation ----------------------------------------------------

    /** Allocate a load entry; -1 when the thread's quota is full. */
    i32 allocLoad(ThreadId tid, u32 tgen, u64 tb_id);
    /** Allocate a store entry; -1 when the thread's quota is full. */
    i32 allocStore(ThreadId tid, u32 tgen, u64 tb_id);

    /**
     * Free a load entry.
     */
    void freeLoad(i32 id);

    /**
     * Free a store entry.  When @p squashed, the (still valid, issued)
     * loads that forwarded from it consumed phantom data and are
     * returned for recovery; stall waiters are returned either way so
     * the engine can retry them.
     *
     * Returns a reference to internal scratch storage: consume it
     * before the next freeStore() call.
     */
    struct FreeStoreResult
    {
        std::vector<i32> orphaned_loads;
        std::vector<DynRef> stall_waiters;
    };
    const FreeStoreResult &freeStore(i32 id, bool squashed);

    bool lqFull(ThreadId tid) const;
    bool sqFull(ThreadId tid) const;

    LsqLoad &load(i32 id);
    LsqStore &store(i32 id);

    // ---- issue ----------------------------------------------------------

    /** Outcome of a (re-)issued load. */
    struct LoadIssueResult
    {
        enum Kind { Memory, Forward, Stall } kind = Memory;
        i32 store_id = -1;
        bool cross_thread = false;
    };

    /**
     * (Re-)issue a load: record its address and find its data source.
     * The caller extracts forwarded bytes with extractStoreBytes() and
     * then records the observed value via setLoadValue().
     */
    LoadIssueResult loadIssue(i32 lq_id, Addr addr, u8 bytes,
                              const OrderOracle &order);

    /** Record the raw bytes the load observed. */
    void setLoadValue(i32 lq_id, u32 raw_value);

    /**
     * (Re-)execute a store: record address/data and return the ids of
     * later loads that are now known to have read stale data (sorted,
     * deduplicated).  Returns a reference to internal scratch storage:
     * consume it before the next storeExecute() call.
     */
    const std::vector<i32> &storeExecute(i32 sq_id, Addr addr, u8 bytes,
                                         u32 data,
                                         const OrderOracle &order);

    /**
     * Mark the store finally retired (awaiting drain).  @p retire_seq
     * is its global retirement order — once the owning thread is gone,
     * ordering against retired stores uses this stamp.
     */
    void storeRetired(i32 sq_id, u64 retire_seq);

    /** Program-order compare of two stores, retirement-aware. */
    bool storeBefore(const LsqStore &a, const LsqStore &b,
                     const OrderOracle &order) const;

    /** Is the store before the (live) load, retirement-aware? */
    static bool storeBeforeLoad(const LsqStore &st, const LsqLoad &ld,
                                const OrderOracle &order);

    /** Register a load to wake when @p sq_id drains. */
    void addStallWaiter(i32 sq_id, DynRef dyn);

    /** Any store earlier than (tid, tb_id) with an unresolved address? */
    bool hasUnexecutedEarlierStore(ThreadId tid, u64 tb_id,
                                   const OrderOracle &order) const;

    /** Raw load bytes taken from a containing store. */
    static u32 extractStoreBytes(const LsqStore &st, Addr load_addr,
                                 u8 load_bytes);

    /** Bytes [addr, addr+bytes) of the two accesses overlap? */
    static bool overlaps(Addr a1, u8 b1, Addr a2, u8 b2);

    /** Store [a2,b2) fully contains load [a1,b1)? */
    static bool contains(Addr load_addr, u8 load_bytes, Addr store_addr,
                         u8 store_bytes);

    int loadCount(ThreadId tid) const;
    int storeCount(ThreadId tid) const;

  private:
    friend class InvariantAuditor; // white-box structural audit

    static Addr wordOf(Addr a) { return a & ~3u; }

    int lq_per_thread;
    int sq_per_thread;

    std::vector<LsqLoad> loads;
    std::vector<LsqStore> stores;
    std::vector<i32> free_loads;
    std::vector<i32> free_stores;
    std::vector<int> lq_count; // per thread
    std::vector<int> sq_count;

    WordIndex loads_by_word;
    WordIndex stores_by_word;

    // Reused result storage so the hot path returns without
    // allocating (see storeExecute / freeStore).
    std::vector<i32> violations_scratch_;
    FreeStoreResult free_store_result_;
};

} // namespace dmt

#endif // DMT_DMT_LSQ_HH
