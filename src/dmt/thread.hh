/**
 * @file
 * Hardware thread context: everything duplicated per thread in Figure
 * 1a of the paper — PC, rename tables (normal + recovery), trace
 * buffer, IO register file, branch sequencing state — plus the
 * simulator-side bookkeeping (fetch queue, in-pipeline FIFO, branch
 * checkpoints, recovery FSM).
 */

#ifndef DMT_DMT_THREAD_HH
#define DMT_DMT_THREAD_HH

#include <algorithm>
#include <vector>

#include "branch/predictor.hh"
#include "common/ring_queue.hh"
#include "dmt/checkpoint_ring.hh"
#include "dmt/dataflow_pred.hh"
#include "dmt/dyninst.hh"
#include "dmt/io_regfile.hh"
#include "dmt/recovery.hh"
#include "dmt/trace_buffer.hh"

namespace dmt
{

/**
 * Checkpoint taken at every mispredictable branch dispatch.  There is
 * no separate rename-map snapshot: register renaming is embodied in the
 * trace buffer's last-writer table (the "trace buffer rename unit"),
 * whose snapshot restores the mapping state exactly.
 */
struct BranchCheckpoint
{
    TraceBuffer::WriterSnapshot writers;
    ThreadBranchState bstate;
    /**
     * loop_spawned length at checkpoint time.  The spawned-loop set is
     * append-only between a checkpoint and its restore, so the prefix
     * of that length IS the checkpointed set — no copy needed (the old
     * code deep-copied a std::set into every checkpoint).
     */
    size_t loop_mark = 0;
};

/** An instruction in flight between fetch and dispatch. */
struct FetchedInst
{
    Instruction inst;
    Addr pc = 0;
    Cycle ready_cycle = 0; ///< earliest dispatch (frontend depth)
    Cycle fetch_cycle = 0;
    BranchPrediction pred;
    /** ICache-miss episode to attach at dispatch (0 = none). */
    u64 imiss_episode = 0;
    /** Sequencing state before this (control) instruction's own
     *  speculative updates — used for exact repair on misprediction and
     *  as the child's context at spawn points. */
    ThreadBranchState bstate_before;
    bool has_bstate = false;
};

/** Dataflow-prediction watch for one of this thread's inputs. */
struct DfWatch
{
    LogReg reg = 0;
    u16 modpc_lo = 0;
};

/** One hardware thread context. */
struct ThreadContext
{
    ThreadId id = kNoThread;
    u32 gen = 0;
    bool active = false;

    // Program position.
    Addr start_pc = 0;
    Addr pc = 0;
    /** PC of the spawning instruction (call / backward branch). */
    Addr spawn_point_pc = 0;
    /** True for after-loop threads (vs after-call). */
    bool is_loop_thread = false;

    // Fetch state.
    bool stopped = false;  ///< reached successor start / HALT / squarantine
    bool fetched_halt = false;
    Cycle fetch_ready = 0; ///< ICache miss stall release
    RingQueue<FetchedInst> fq;
    u64 pending_imiss_episode = 0;

    // Rename and speculative state.
    TraceBuffer tb;
    ThreadBranchState bstate;
    IoRegFile io;
    RecoveryFsm recov;

    /** Dispatched, not-yet-early-retired instructions in order. */
    RingQueue<DynRef> pipe;

    /** Checkpoints of mispredictable branches, keyed by TB id. */
    CheckpointRing<BranchCheckpoint> checkpoints;

    /** Backward-branch PCs that already spawned a fall-through thread
     *  (paper: an inner loop spawns its after-loop thread only once).
     *  Append-only flat set; a checkpoint restore truncates back to
     *  the checkpoint's loop_mark (see BranchCheckpoint). */
    std::vector<Addr> loop_spawned;

    bool
    loopSpawnedContains(Addr branch_pc) const
    {
        return std::find(loop_spawned.begin(), loop_spawned.end(),
                         branch_pc) != loop_spawned.end();
    }

    void
    loopSpawnedInsert(Addr branch_pc)
    {
        if (!loopSpawnedContains(branch_pc))
            loop_spawned.push_back(branch_pc);
    }

    /** Dataflow-prediction watches for this thread's inputs. */
    std::vector<DfWatch> df_watch;

    // Squash detection: trace-buffer append count when the current
    // successor was spawned; if the thread appends a full buffer worth
    // without joining, the successor was mispredicted.
    u64 successor_watch_base = 0;
    bool successor_watch_armed = false;
    u32 watched_succ_key = 0;

    // Statistics.
    Cycle spawn_cycle = 0;
    bool was_spawned = false; ///< false only for the initial thread
    u64 retired_count = 0;
    u64 exec_while_spec = 0;
    u64 exec_total = 0;
    u32 divergence_repairs = 0;
    u32 recoveries_started = 0;

    /** Is this thread fetch-capable this cycle?  @p recovery_stall is
     *  the configured policy (see SimConfig::recovery_fetch_stall). */
    bool
    canFetch(Cycle now, int recovery_stall) const
    {
        if (!active || stopped || fetched_halt || now < fetch_ready)
            return false;
        if (recovery_stall >= 2 && recov.busy())
            return false;
        if (recovery_stall == 1 && recov.walking())
            return false;
        return true;
    }

    void
    resetFor(ThreadId tid, int tb_capacity)
    {
        id = tid;
        ++gen;
        active = true;
        start_pc = pc = spawn_point_pc = 0;
        is_loop_thread = false;
        stopped = false;
        fetched_halt = false;
        fetch_ready = 0;
        fq.clear();
        pending_imiss_episode = 0;
        tb.reset(tb_capacity);
        bstate = ThreadBranchState{};
        io.reset();
        recov.reset();
        pipe.clear();
        checkpoints.clear();
        loop_spawned.clear();
        df_watch.clear();
        successor_watch_base = 0;
        successor_watch_armed = false;
        watched_succ_key = 0;
        spawn_cycle = 0;
        was_spawned = false;
        retired_count = 0;
        exec_while_spec = 0;
        exec_total = 0;
        divergence_repairs = 0;
        recoveries_started = 0;
    }
};

} // namespace dmt

#endif // DMT_DMT_THREAD_HH
