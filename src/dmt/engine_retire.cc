/**
 * @file
 * Retirement: early retirement (clearing the execution pipeline),
 * final retirement from the head thread's trace buffer with golden
 * checking, head-switch input validation, store drain to memory, and
 * late-divergence flushes (paper Sections 2.1, 2.2, 3.3).
 */

#include "dmt/engine.hh"

namespace dmt
{

// ---------------------------------------------------------------------
// Early retirement
// ---------------------------------------------------------------------

void
DmtEngine::earlyRetireThread(ThreadContext &t, int width)
{
    while (width > 0 && !t.pipe.empty()) {
        DynInst *d = pool.get(t.pipe.front());
        if (!d) {
            t.pipe.pop_front();
            continue;
        }
        if (d->squashed) {
            pool.release(d);
            t.pipe.pop_front();
            continue;
        }
        if (d->state != DynState::Done)
            break;

        d->early_retired = true;
        --window_used;
        ++stats_.early_retired;

        if (d->dest_phys != kNoPhysReg) {
            // Early retirement frees physical registers that are no
            // longer needed (paper Section 2.1): the result now lives
            // in the trace buffer data array, so even the authoritative
            // incarnation's register can go — readers check
            // result_valid before touching the tag.
            if (t.tb.contains(d->tb_id)
                && t.tb.at(d->tb_id).uid == d->uid) {
                TBEntry &entry = t.tb.at(d->tb_id);
                DMT_ASSERT(entry.result_valid,
                           "early retiring incomplete entry");
                entry.cur_phys = kNoPhysReg;
            }
            prf.free(d->dest_phys);
        }
        // A checkpoint that never got consumed (e.g. superseded branch)
        // is dead once the instruction leaves the pipeline.
        t.checkpoints.erase(d->tb_id);

        pool.release(d);
        t.pipe.pop_front();
        --width;
    }
}

void
DmtEngine::doEarlyRetire()
{
    for (const auto &tptr : threads) {
        if (tptr->active)
            earlyRetireThread(*tptr, cfg.retire_width);
    }
}

// ---------------------------------------------------------------------
// Store drain
// ---------------------------------------------------------------------

void
DmtEngine::doStoreDrain()
{
    if (drain_q.empty())
        return;
    int budget = cfg.unlimited_fus ? 8 : cfg.fus.mem_ports;
    while (!drain_q.empty() && budget > 0) {
        if (!cfg.unlimited_fus
            && !fus.tryIssue(OpClass::MemWrite, now_)) {
            break; // paper: drained stores compete for DCache ports
        }
        const i32 sq = drain_q.front();
        drain_q.pop_front();
        --budget;

        // Scalar copies before freeStore invalidates the entry.
        const LsqStore &st = lsq.store(sq);
        const Addr st_addr = st.addr;
        const int st_bytes = st.bytes;
        const u32 st_data = st.data;
        mem.write(st_addr, st_bytes, st_data);
        hier.dataAccess(st_addr, true);

        const Lsq::FreeStoreResult &res = lsq.freeStore(sq, false);
        DMT_ASSERT(res.orphaned_loads.empty(),
                   "drained store reported orphans");
        for (const DynRef &ref : res.stall_waiters) {
            DynInst *d = pool.get(ref);
            if (d && !d->squashed && d->state == DynState::Waiting)
                makeReady(d);
        }
    }
}

// ---------------------------------------------------------------------
// Head switch: validate the value-predicted inputs
// ---------------------------------------------------------------------

void
DmtEngine::headSwitch(ThreadContext &t)
{
    // All stores of prior threads must be in memory before this
    // thread's state can be declared architectural.
    if (!drain_q.empty())
        return;

    std::vector<DfItem> &mispredicted = head_mispred_scratch_;
    mispredicted.clear();
    for (int ri = 1; ri < kNumLogRegs; ++ri) {
        const LogReg r = static_cast<LogReg>(ri);
        IoInput &in = t.io.in[r];
        if (in.finalized)
            continue;

        // Final check: deliver the architectural value.  This wakes any
        // still-blocked consumers and, on a mismatch with the value
        // speculatively consumed, queues a recovery sequence.
        deliverInput(t, r, retire_regs[r], false);

        if (in.used) {
            ++stats_.inputs_used;
            if (!in.found_wrong) {
                ++stats_.inputs_hit;
                if (in.corrected)
                    ++stats_.inputs_df_correct;
                else if (in.valid_at_spawn)
                    ++stats_.inputs_valid_at_spawn;
                else
                    ++stats_.inputs_same_later;
            }
            if (in.found_wrong || in.corrected) {
                mispredicted.push_back(
                    {r, static_cast<u16>(last_mod_pc[r])});
            }
        }
        in.finalized = true;
    }

    if (cfg.dataflow_prediction && t.was_spawned) {
        if (!mispredicted.empty())
            df_pred.record(t.start_pc, mispredicted);
        else
            df_pred.clear(t.start_pc);
    }

    head_validated = true;
}

// ---------------------------------------------------------------------
// Final retirement
// ---------------------------------------------------------------------

void
DmtEngine::noteRetiredForPredictors(const TBEntry &entry)
{
    spawn_pred.onRetirePc(entry.pc);

    // Loop-exit detection: did control leave any watched loop body?
    // Excursions into called procedures don't count — only code reached
    // at the loop's own call depth is an exit.
    //
    // ORDER MATTERS here: loop_watches is kept in insertion (FIFO)
    // order so that the capacity eviction below — erase(begin()) at
    // cap 8 — drops the *oldest* watch.  Swap-and-pop in this erase
    // loop would scramble that order and change which watch gets
    // evicted, so the ordered erase is intentional (the list is at
    // most 8 entries, so the shift is cheap).
    for (size_t i = 0; i < loop_watches.size();) {
        LoopWatch &w = loop_watches[i];
        if (w.call_depth <= 0
            && (entry.pc < w.body_lo || entry.pc > w.body_hi)) {
            spawn_pred.recordLoopExit(w.branch_pc, entry.pc);
            loop_watches.erase(loop_watches.begin()
                               + static_cast<long>(i));
            continue;
        }
        if (entry.inst.isCall())
            ++w.call_depth;
        else if (entry.inst.isReturn())
            --w.call_depth;
        ++i;
    }

    if (entry.inst.isCall()) {
        spawn_pred.onRetireSpawnPoint(entry.pc + 4);
        return;
    }

    if (entry.inst.isBackwardBranch(entry.pc)
        && entry.trace_next_pc != entry.pc + 4) {
        // Taken loop-closing branch.
        spawn_pred.onRetireSpawnPoint(
            spawn_pred.predictAfterLoop(entry.pc));
        const Addr body_lo = entry.inst.branchTarget(entry.pc);
        bool known = false;
        for (const LoopWatch &w : loop_watches)
            known = known || w.branch_pc == entry.pc;
        if (!known) {
            // FIFO eviction of the oldest watch — relies on the list
            // staying in insertion order (see comment above).
            if (loop_watches.size() >= 8)
                loop_watches.erase(loop_watches.begin());
            loop_watches.push_back({entry.pc, body_lo, entry.pc, 0});
        }
    }
}

bool
DmtEngine::finalRetireEntry(ThreadContext &t, TBEntry &entry)
{
    DMT_ASSERT(entry.completed, "retiring incomplete entry");

    if (entry.has_dest) {
        retire_regs[entry.dest] = entry.result;
        last_mod_pc[entry.dest] = entry.pc;
    }

    // Progressive final check (paper Section 3.2.2): once the head
    // thread has stopped fetching, its last writer of each register is
    // final, so the successor's input can be validated as soon as that
    // writer retires — before the whole thread finishes.  (While the
    // head is still fetching, a later redefinition could arrive, so
    // the check must wait.)
    if (cfg.isDmt() && entry.has_dest && t.stopped && t.fq.empty()
        && t.tb.isLiveOut(entry.id)) {
        const ThreadId succ = tree.successor(t.id);
        if (succ != kNoThread)
            deliverInput(ctx(succ), entry.dest, entry.result, false);
    }

    RetireRecord rec;
    rec.pc = entry.pc;
    rec.dest = entry.has_dest ? entry.dest : -1;
    rec.dest_val = entry.result;
    if (entry.inst.isStore()) {
        const LsqStore &st = lsq.store(entry.sq_id);
        rec.is_store = true;
        rec.mem_addr = st.addr;
        rec.store_val = st.data;
        lsq.storeRetired(entry.sq_id, retired_total);
        drain_q.push_back(entry.sq_id);
        entry.sq_id = -1; // ownership moved to the drain queue
    }
    if (entry.lq_id >= 0) {
        lsq.freeLoad(entry.lq_id);
        entry.lq_id = -1;
        if (cfg.memdep_sync && entry.dispatch_count <= 1)
            memdepTrain(entry.pc, false); // never re-dispatched: clean
    }
    if (entry.inst.op == Opcode::OUT) {
        rec.emitted_out = true;
        rec.out_val = entry.result;
        out_stream.push_back(entry.result);
    }

    if (checker) {
        const bool ok = checker->onRetire(rec);
        DMT_ASSERT(ok, "%s", checker->error().c_str());
    }

    noteRetiredForPredictors(entry);

    // Lookahead accounting (Figures 8 and 9).
    if (cfg.isDmt()) {
        if (branch_eps.covered(entry.fetch_cycle, entry.branch_episode))
            ++stats_.la_fetch_beyond_mispredict;
        if (entry.first_exec_cycle != 0
            && branch_eps.covered(entry.first_exec_cycle,
                                  entry.branch_episode)) {
            ++stats_.la_exec_beyond_mispredict;
        }
        if (imiss_eps.covered(entry.fetch_cycle, entry.imiss_episode))
            ++stats_.la_fetch_beyond_imiss;
        if (entry.first_exec_cycle != 0
            && imiss_eps.covered(entry.first_exec_cycle,
                                 entry.imiss_episode)) {
            ++stats_.la_exec_beyond_imiss;
        }
        if (entry.branch_episode)
            branch_eps.ownerRetired(entry.branch_episode);
        if (entry.imiss_episode)
            imiss_eps.ownerRetired(entry.imiss_episode);
    }

    ++t.retired_count;
    ++retired_total;
    ++stats_.retired;
    emitTrace(TraceStage::Retire, TraceEventKind::InstRetire, t.id,
              entry.pc, entry.fetch_cycle, entry.id);
    if (retire_hook)
        retire_hook(entry, t.id);
    t.tb.popFront();
    return true;
}

void
DmtEngine::lateDivergenceFlush(ThreadContext &t, const TBEntry &entry)
{
    // The divergent branch itself has already retired with its
    // corrected direction; the rest of *this thread's* trace is on the
    // wrong path and is refetched from the corrected target (paper
    // Section 3.3).  Later threads survive — control independence: if
    // the corrected path still reaches the successor's start PC their
    // work stands, and the join validation squashes them otherwise.
    const Addr target = entry.divergence_target;

    inThreadSquash(t, t.tb.firstId(), target, nullptr);

    // Refetched instructions resolve their sources against the
    // architectural state at this point.
    for (int ri = 0; ri < kNumLogRegs; ++ri) {
        IoInput &in = t.io.in[static_cast<size_t>(ri)];
        in.valid = true;
        in.value = retire_regs[static_cast<size_t>(ri)];
        in.watch = kNoPhysReg;
        in.finalized = true;
    }
}

void
DmtEngine::fullyRetireThread(ThreadContext &t)
{
    // Superseded incarnations may still be in flight.
    for (const DynRef &ref : t.pipe) {
        DynInst *d = pool.get(ref);
        if (!d)
            continue;
        if (!d->squashed)
            squashDyn(d);
        pool.release(d);
    }
    t.pipe.clear();
    DMT_ASSERT(t.tb.empty(), "retiring thread with live entries");

    // Successor validation (paper Section 3.1.2): this thread's actual
    // join point is its final PC.  Any successor that does not start
    // exactly there was mispredicted (e.g. spawned after this thread
    // had already stopped) and is squashed with its subtree.
    if (!t.fetched_halt) {
        ThreadId succ;
        while ((succ = tree.successor(t.id)) != kNoThread
               && ctx(succ).start_pc != t.pc) {
            squashThreadTree(succ);
        }
    }

    if (t.was_spawned) {
        const bool joined = t.stopped && !t.fetched_halt;
        const double overlap = t.exec_total == 0
            ? 0.0
            : static_cast<double>(t.exec_while_spec)
                  / static_cast<double>(t.exec_total);
        const bool too_small =
            t.retired_count < static_cast<u64>(cfg.min_thread_size);
        // Threads that repeatedly went down wrong data-dependent
        // paths (divergence repairs) or whose inputs kept needing
        // repair (recovery walks) slowed execution down even if they
        // joined: distant speculation over serial memory state is the
        // classic case.
        const bool useful = joined && overlap >= cfg.min_overlap_frac
            && t.divergence_repairs <= 2
            && t.recoveries_started
                   <= 2 + t.retired_count / 64;
        spawn_pred.onThreadRetired(t.start_pc, useful, too_small);
        if (joined)
            ++stats_.threads_joined;
        stats_.thread_size.sample(static_cast<double>(t.retired_count));
        stats_.thread_overlap.sample(overlap);
    }
    stats_.thread_size_hist.sample(static_cast<double>(t.retired_count));
    emitTrace(TraceStage::Thread, TraceEventKind::ThreadRetire, t.id,
              t.start_pc, t.retired_count,
              t.stopped && !t.fetched_halt ? 1 : 0);

    tree.remove(t.id);
    t.active = false;
    ++t.gen;
    // Per-element clear keeps each waiter vector's capacity (fill({})
    // would replace them with freshly-constructed empties).
    for (auto &waiters : io_waiters[static_cast<size_t>(t.id)])
        waiters.clear();
    head_validated = false;
    if (debug_trace)
        std::fprintf(stderr, "[%llu] fullyRetired tid=%d start=0x%x "
                     "retired=%llu\n", (unsigned long long)now_, t.id,
                     t.start_pc, (unsigned long long)t.retired_count);
}

void
DmtEngine::finalRetireHead()
{
    const ThreadId head = tree.head();
    if (head == kNoThread)
        return;
    ThreadContext &t = ctx(head);

    if (!head_validated) {
        headSwitch(t);
        if (!head_validated) {
            ++stats_.st_headswitch;
            return;
        }
        emitTrace(TraceStage::Retire, TraceEventKind::HeadSwitch, t.id,
                  t.start_pc);
    }
    int width = cfg.retire_width;
    while (width > 0) {
        if (t.tb.empty()) {
            if (t.recov.busy()) {
                ++stats_.st_recovery;
            } else if ((t.stopped || t.fetched_halt) && t.fq.empty()) {
                fullyRetireThread(t);
            } else if (width == cfg.retire_width) {
                ++stats_.st_empty;
            }
            return;
        }
        TBEntry &entry = t.tb.at(t.tb.firstId());
        // Entries at or above the recovery low-water mark may still be
        // re-dispatched with corrected inputs; everything below it is
        // final and retires under the running walk.
        if (entry.id >= t.recov.lowWater()) {
            if (width == cfg.retire_width)
                ++stats_.st_recovery;
            return;
        }
        if (!entry.completed) {
            if (width == cfg.retire_width)
                ++stats_.st_incomplete;
            return;
        }

        if (entry.inst.isHalt()) {
            finalRetireEntry(t, entry);
            program_done = true;
            done_ = true;
            return;
        }

        const bool divergent = entry.divergence;
        const TBEntry snapshot = entry; // survives the pop
        finalRetireEntry(t, entry);
        --width;

        if (divergent) {
            lateDivergenceFlush(t, snapshot);
            return;
        }
        if (t.recov.busy())
            return;
    }
}

void
DmtEngine::doFinalRetire()
{
    finalRetireHead();
}

} // namespace dmt
