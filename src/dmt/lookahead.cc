#include "dmt/lookahead.hh"

#include <algorithm>

namespace dmt
{

EpisodeTracker::EpisodeTracker()
{
    // The retention window (DmtEngine prunes at now - 100k) holds tens
    // of thousands of episodes on branchy workloads; pre-size
    // everything so the steady-state engine loop never allocates here
    // (~2 MB per tracker, and there are two).
    episodes.reserve(32768);
    countable_.reserve(32768);
    pmax_.reserve(32768);
}

u64
EpisodeTracker::open(Cycle start, Cycle end)
{
    const u64 handle = next_handle++;
    episodes.push_back({handle, start, end, false, false});
    return handle;
}

i64
EpisodeTracker::findByHandle(u64 handle) const
{
    // Handles are assigned monotonically and prune() only pops the
    // front, so the ring is sorted by handle: binary search.
    size_t lo = 0, hi = episodes.size();
    while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (episodes[mid].handle < handle)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < episodes.size() && episodes[lo].handle == handle)
        return static_cast<i64>(lo);
    return -1;
}

void
EpisodeTracker::refreshPrefixMax(size_t from)
{
    pmax_.resize(countable_.size());
    for (size_t i = from; i < countable_.size(); ++i) {
        const Cycle prev = i ? pmax_[i - 1] : 0;
        pmax_[i] = std::max(prev, countable_[i].end);
    }
}

void
EpisodeTracker::indexCountable(const Episode &e)
{
    const auto pos = std::upper_bound(
        countable_.begin(), countable_.end(), e.start,
        [](Cycle when, const Countable &c) { return when < c.start; });
    const size_t at = static_cast<size_t>(pos - countable_.begin());
    countable_.insert(pos, Countable{e.start, e.end, e.handle});
    refreshPrefixMax(at);
}

void
EpisodeTracker::unindexCountable(u64 handle)
{
    for (size_t i = 0; i < countable_.size(); ++i) {
        if (countable_[i].handle == handle) {
            countable_.erase(countable_.begin()
                             + static_cast<std::ptrdiff_t>(i));
            refreshPrefixMax(i);
            return;
        }
    }
}

void
EpisodeTracker::ownerRetired(u64 handle)
{
    const i64 at = findByHandle(handle);
    if (at < 0)
        return;
    Episode &e = episodes[static_cast<size_t>(at)];
    // A dropped episode must not resurrect, and a second notification
    // must not index the episode twice.
    if (e.countable || e.dropped) {
        e.countable = true;
        return;
    }
    e.countable = true;
    indexCountable(e);
}

void
EpisodeTracker::drop(u64 handle)
{
    const i64 at = findByHandle(handle);
    if (at < 0)
        return;
    Episode &e = episodes[static_cast<size_t>(at)];
    if (e.dropped)
        return;
    e.dropped = true;
    if (e.countable)
        unindexCountable(handle);
}

bool
EpisodeTracker::covered(Cycle when, u64 exclude) const
{
    // Stabbing query on the start-sorted countable set: the last
    // episode with start <= when exists and some episode at or before
    // it ends after when.
    const auto pos = std::upper_bound(
        countable_.begin(), countable_.end(), when,
        [](Cycle w, const Countable &c) { return w < c.start; });
    if (pos == countable_.begin())
        return false;
    const size_t last = static_cast<size_t>(pos - countable_.begin()) - 1;
    if (pmax_[last] <= when)
        return false;
    if (exclude == 0)
        return true;

    // Some countable episode covers `when`; it might be the excluded
    // one.  In the engine the excluded handle is the candidate's own
    // episode, which only becomes countable *after* this query, so this
    // is the cold path — but the owner-excludes-itself rule must stay
    // exact regardless.
    const i64 at = findByHandle(exclude);
    if (at < 0)
        return true;
    const Episode &e = episodes[static_cast<size_t>(at)];
    if (!e.countable || e.dropped || when < e.start || when >= e.end)
        return true;
    for (size_t i = 0; i <= last; ++i) {
        const Countable &c = countable_[i];
        if (c.end > when && c.handle != exclude)
            return true;
    }
    return false;
}

void
EpisodeTracker::prune(Cycle horizon)
{
    bool popped = false;
    while (!episodes.empty() && episodes.front().end < horizon) {
        episodes.pop_front();
        popped = true;
    }
    if (!popped)
        return;
    // Everything pruned from the ring has a handle below the new front
    // (or the ring emptied); evict the same episodes from the query
    // index.  erase-remove keeps the start order intact.
    const u64 min_handle = episodes.empty()
        ? next_handle : episodes.front().handle;
    const auto it = std::remove_if(
        countable_.begin(), countable_.end(),
        [min_handle](const Countable &c) { return c.handle < min_handle; });
    if (it != countable_.end()) {
        countable_.erase(it, countable_.end());
        refreshPrefixMax(0);
    }
}

} // namespace dmt
