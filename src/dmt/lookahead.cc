#include "dmt/lookahead.hh"

namespace dmt
{

u64
EpisodeTracker::open(Cycle start, Cycle end)
{
    const u64 handle = next_handle++;
    episodes.push_back({handle, start, end, false, false});
    return handle;
}

void
EpisodeTracker::ownerRetired(u64 handle)
{
    for (auto &e : episodes) {
        if (e.handle == handle) {
            e.countable = true;
            return;
        }
    }
}

void
EpisodeTracker::drop(u64 handle)
{
    for (auto &e : episodes) {
        if (e.handle == handle) {
            e.dropped = true;
            return;
        }
    }
}

bool
EpisodeTracker::covered(Cycle when, u64 exclude) const
{
    for (const auto &e : episodes) {
        if (e.countable && !e.dropped && e.handle != exclude
            && when >= e.start && when < e.end) {
            return true;
        }
    }
    return false;
}

void
EpisodeTracker::prune(Cycle horizon)
{
    while (!episodes.empty() && episodes.front().end < horizon)
        episodes.pop_front();
}

} // namespace dmt
