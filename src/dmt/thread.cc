#include "dmt/thread.hh"

// ThreadContext is a plain data aggregate; behaviour lives in the
// engine.  Compiled standalone for the self-containment check.
