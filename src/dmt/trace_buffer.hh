/**
 * @file
 * Per-thread trace buffer: the level-2 instruction window (paper
 * Section 3.2).  Holds every speculative instruction of the thread —
 * with its thread-local source mappings, latest physical destination,
 * and executed result — from rename until final retirement.  Supports:
 *
 *  - append at fetch/rename (with thread-local "last writer" renaming,
 *    i.e. the trace buffer rename unit),
 *  - tail truncation on intra-thread branch misprediction,
 *  - sequential block reads for the recovery walk,
 *  - in-order pop at final retirement.
 *
 * Entries are addressed by monotonically increasing absolute ids so
 * references stay valid as the front of the buffer retires.
 */

#ifndef DMT_DMT_TRACE_BUFFER_HH
#define DMT_DMT_TRACE_BUFFER_HH

#include <array>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "isa/inst.hh"

namespace dmt
{

/** Where a trace-buffer entry's register source comes from. */
struct SrcRef
{
    enum Kind : u8
    {
        None,        ///< operand not a register (or unused)
        ThreadInput, ///< the thread's value-predicted input register
        TbEntry,     ///< a prior entry of the same thread
    };

    Kind kind = None;
    LogReg reg = 0;
    u64 tb_id = 0; ///< producer entry (kind == TbEntry)
};

/** One trace-buffer entry. */
struct TBEntry
{
    u64 id = 0;
    Instruction inst;
    Addr pc = 0;

    /** Incarnation counter; bumped by every recovery re-dispatch. */
    u32 uid = 0;

    SrcRef src[2];
    bool has_dest = false;
    LogReg dest = 0;

    /** Latest physical destination (tag array entry). */
    PhysReg cur_phys = kNoPhysReg;
    /** Executed result (data array entry). */
    u32 result = 0;
    bool result_valid = false;
    /** True when the authoritative incarnation has executed. */
    bool completed = false;

    // Memory state.
    i32 lq_id = -1;
    i32 sq_id = -1;

    // Control-flow state.
    bool predicted_taken = false;
    Addr predicted_target = 0;
    u32 history_used = 0;
    /** The path this trace actually follows after the entry. */
    Addr trace_next_pc = 0;
    /** Set once the original in-pipeline incarnation resolved. */
    bool resolved_once = false;
    /** Recovery re-execution went a different way (paper Section 3.3):
     *  handled at final retirement by flushing and refetching. */
    bool divergence = false;
    Addr divergence_target = 0;

    /** Thread spawned off this instruction (for squash propagation). */
    ThreadId child_tid = kNoThread;
    u32 child_gen = 0;

    // Lookahead episode handles (Figures 8/9); 0 = none.
    u64 branch_episode = 0;
    u64 imiss_episode = 0;

    // Statistics hooks.
    Cycle fetch_cycle = 0;
    Cycle first_exec_cycle = 0;
    bool executed_ever = false;
    u16 dispatch_count = 0;
};

/** The per-thread trace buffer. */
class TraceBuffer
{
  public:
    void
    reset(int capacity_)
    {
        head_ = 0;
        count_ = 0;
        base = 0;
        capacity = capacity_;
        // Grow-only backing store: re-spawning a context with the same
        // tb_size (the common case) reuses the existing slots.
        if (static_cast<size_t>(capacity_) > store_.size())
            store_.resize(static_cast<size_t>(capacity_));
        has_writer.fill(0);
        last_writer_.fill(0);
        total_appended = 0;
    }

    bool full() const { return size() >= capacity; }
    bool empty() const { return count_ == 0; }
    int size() const { return static_cast<int>(count_); }
    u64 firstId() const { return base; }
    u64 endId() const { return base + count_; }
    bool
    contains(u64 id) const
    {
        return id >= base && id < endId();
    }

    TBEntry &
    at(u64 id)
    {
        DMT_ASSERT(contains(id), "trace buffer id out of range");
        return store_[slotOf(id)];
    }

    const TBEntry &
    at(u64 id) const
    {
        DMT_ASSERT(contains(id), "trace buffer id out of range");
        return store_[slotOf(id)];
    }

    /** Append a renamed instruction; fills id and source refs. */
    u64 append(TBEntry entry);

    /** Pop the oldest entry (final retirement). */
    void
    popFront()
    {
        DMT_ASSERT(count_ > 0, "pop from empty trace buffer");
        // The last-writer table intentionally keeps references to
        // retired ids; is_live_out checks compare ids, not storage.
        ++head_;
        if (head_ >= store_.size())
            head_ = 0;
        --count_;
        ++base;
    }

    /**
     * Discard entries with id >= @p from_id (intra-thread branch
     * squash).  The last-writer table must be restored from the
     * branch's checkpoint by the caller.
     */
    void
    truncateFrom(u64 from_id)
    {
        DMT_ASSERT(from_id >= base, "truncation below retired entries");
        if (from_id < endId())
            count_ = static_cast<size_t>(from_id - base);
    }

    /** Is @p id the thread's current last writer of its destination? */
    bool
    isLiveOut(u64 id) const
    {
        const TBEntry &e = at(id);
        return e.has_dest && has_writer[e.dest]
            && last_writer_[e.dest] == id;
    }

    /** Last writer of logical @p r, if any. */
    bool
    lastWriter(LogReg r, u64 *id) const
    {
        if (!has_writer[r])
            return false;
        *id = last_writer_[r];
        return true;
    }

    /** Snapshot of the last-writer table (branch checkpoints). */
    struct WriterSnapshot
    {
        std::array<u64, kNumLogRegs> last_writer;
        std::array<u8, kNumLogRegs> has_writer;
    };

    WriterSnapshot
    writerSnapshot() const
    {
        return {last_writer_, has_writer};
    }

    void
    restoreWriters(const WriterSnapshot &s)
    {
        last_writer_ = s.last_writer;
        has_writer = s.has_writer;
    }

    /** Instructions ever appended (thread-misprediction detector). */
    u64 totalAppended() const { return total_appended; }

  private:
    /**
     * Slot of @p id in the circular store.  Valid for live ids and for
     * the one-past-the-end append position: id - base <= count_ <=
     * store_.size() and head_ < store_.size(), so one compare-subtract
     * wraps.  (The store is sized exactly to capacity, not rounded to
     * a power of two — trace buffers are sized by config, and masking
     * would waste up to 2x memory per thread.)
     */
    size_t
    slotOf(u64 id) const
    {
        size_t s = head_ + static_cast<size_t>(id - base);
        if (s >= store_.size())
            s -= store_.size();
        return s;
    }

    /** Fixed-capacity circular store; slots are reused, never freed. */
    std::vector<TBEntry> store_;
    size_t head_ = 0;
    size_t count_ = 0;
    u64 base = 0;
    int capacity = 0;
    u64 total_appended = 0;

    std::array<u64, kNumLogRegs> last_writer_{};
    std::array<u8, kNumLogRegs> has_writer{};
};

} // namespace dmt

#endif // DMT_DMT_TRACE_BUFFER_HH
