/**
 * @file
 * Lookahead accounting for Figures 8 and 9: how many finally-retired
 * instructions were fetched / executed while an *earlier* (program
 * order) instruction stream was blocked — behind an unresolved branch
 * that turned out mispredicted, or behind an ICache miss.  Both are
 * identically zero on a single-threaded machine, which is the paper's
 * point.
 *
 * Episodes are intervals [start, end) in cycles.  An episode becomes
 * countable once its *owner* (the mispredicted branch / the missed
 * instruction) finally retires — that both establishes that the owner
 * was on the correct path and gives the program-order anchor: any
 * instruction retiring later is later in program order.
 */

#ifndef DMT_DMT_LOOKAHEAD_HH
#define DMT_DMT_LOOKAHEAD_HH

#include <deque>

#include "common/types.hh"

namespace dmt
{

/** Tracker for one episode class (branch or ICache miss). */
class EpisodeTracker
{
  public:
    /**
     * Register an episode pending owner retirement.
     * @return episode handle (monotonic id).
     */
    u64 open(Cycle start, Cycle end);

    /** The owner finally retired; the episode becomes countable. */
    void ownerRetired(u64 handle);

    /** The owner got squashed; drop the episode. */
    void drop(u64 handle);

    /**
     * Was cycle @p when inside any countable episode?  (Called at final
     * retirement of a candidate instruction; the candidate must not be
     * the owner — pass its own handle in @p exclude, or 0.)
     */
    bool covered(Cycle when, u64 exclude) const;

    /** Discard episodes that can no longer match (end < horizon). */
    void prune(Cycle horizon);

    size_t size() const { return episodes.size(); }

  private:
    struct Episode
    {
        u64 handle;
        Cycle start;
        Cycle end;
        bool countable = false;
        bool dropped = false;
    };

    std::deque<Episode> episodes;
    u64 next_handle = 1;
};

} // namespace dmt

#endif // DMT_DMT_LOOKAHEAD_HH
