/**
 * @file
 * Lookahead accounting for Figures 8 and 9: how many finally-retired
 * instructions were fetched / executed while an *earlier* (program
 * order) instruction stream was blocked — behind an unresolved branch
 * that turned out mispredicted, or behind an ICache miss.  Both are
 * identically zero on a single-threaded machine, which is the paper's
 * point.
 *
 * Episodes are intervals [start, end) in cycles.  An episode becomes
 * countable once its *owner* (the mispredicted branch / the missed
 * instruction) finally retires — that both establishes that the owner
 * was on the correct path and gives the program-order anchor: any
 * instruction retiring later is later in program order.
 *
 * Performance (DESIGN.md section 11): covered() is called up to four
 * times per finally-retired instruction and the episode retention
 * window spans ~100k cycles, so a linear scan over the episode ring is
 * the dominant cost of a dmt run.  The tracker therefore keeps two
 * structures:
 *
 *  - `episodes`: the FIFO ring of every live episode, ordered by the
 *    monotonic handle — open()/ownerRetired()/drop() resolve handles
 *    with a binary search, and prune() pops from the front only (the
 *    FIFO bound is observable through size() and pinned by tests);
 *  - `countable_` + `pmax_`: the countable episodes sorted by start
 *    cycle with a running prefix-maximum of end, so covered() is a
 *    stabbing query: binary-search the last start <= when and compare
 *    the prefix max against when.  The rare case where the *excluded*
 *    episode itself covers the query point falls back to a linear scan
 *    to keep the owner-excludes-itself semantics exact.
 */

#ifndef DMT_DMT_LOOKAHEAD_HH
#define DMT_DMT_LOOKAHEAD_HH

#include "common/ring_queue.hh"
#include "common/types.hh"

#include <vector>

namespace dmt
{

/** Tracker for one episode class (branch or ICache miss). */
class EpisodeTracker
{
  public:
    EpisodeTracker();

    /**
     * Register an episode pending owner retirement.
     * @return episode handle (monotonic id).
     */
    u64 open(Cycle start, Cycle end);

    /** The owner finally retired; the episode becomes countable. */
    void ownerRetired(u64 handle);

    /** The owner got squashed; drop the episode. */
    void drop(u64 handle);

    /**
     * Was cycle @p when inside any countable episode?  (Called at final
     * retirement of a candidate instruction; the candidate must not be
     * the owner — pass its own handle in @p exclude, or 0.)
     */
    bool covered(Cycle when, u64 exclude) const;

    /** Discard episodes that can no longer match (end < horizon). */
    void prune(Cycle horizon);

    size_t size() const { return episodes.size(); }

  private:
    struct Episode
    {
        u64 handle;
        Cycle start;
        Cycle end;
        bool countable = false;
        bool dropped = false;
    };

    /** A countable episode, mirrored into the start-sorted query index. */
    struct Countable
    {
        Cycle start;
        Cycle end;
        u64 handle;
    };

    /** Ring slot of @p handle, or -1 (ring is handle-ordered). */
    i64 findByHandle(u64 handle) const;

    /** Insert into countable_ keeping start order; update pmax_. */
    void indexCountable(const Episode &e);

    /** Remove @p handle from countable_ (if present); update pmax_. */
    void unindexCountable(u64 handle);

    /** Recompute pmax_ from @p from to the end. */
    void refreshPrefixMax(size_t from);

    RingQueue<Episode> episodes;
    /** Countable episodes sorted by start cycle. */
    std::vector<Countable> countable_;
    /** pmax_[i] = max end over countable_[0..i]. */
    std::vector<Cycle> pmax_;
    u64 next_handle = 1;
};

} // namespace dmt

#endif // DMT_DMT_LOOKAHEAD_HH
