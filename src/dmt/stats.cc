#include "dmt/stats.hh"

namespace dmt
{

void
DmtStats::merge(const DmtStats &other)
{
    cycles.merge(other.cycles);
    retired.merge(other.retired);
    early_retired.merge(other.early_retired);
    dispatched.merge(other.dispatched);
    issued.merge(other.issued);
    squashed_insts.merge(other.squashed_insts);

    threads_spawned.merge(other.threads_spawned);
    threads_squashed.merge(other.threads_squashed);
    threads_joined.merge(other.threads_joined);
    spawns_suppressed.merge(other.spawns_suppressed);
    thread_size.merge(other.thread_size);
    thread_overlap.merge(other.thread_overlap);
    active_threads.merge(other.active_threads);
    thread_size_hist.merge(other.thread_size_hist);

    cond_branches.merge(other.cond_branches);
    cond_mispredicts.merge(other.cond_mispredicts);
    indirect_jumps.merge(other.indirect_jumps);
    indirect_mispredicts.merge(other.indirect_mispredicts);
    late_divergences.merge(other.late_divergences);

    loads_issued.merge(other.loads_issued);
    stores_issued.merge(other.stores_issued);
    fwd_same_thread.merge(other.fwd_same_thread);
    fwd_cross_thread.merge(other.fwd_cross_thread);
    load_stalls_partial.merge(other.load_stalls_partial);
    lsq_violations.merge(other.lsq_violations);

    recoveries.merge(other.recoveries);
    recovery_dispatches.merge(other.recovery_dispatches);
    recovery_walk_hist.merge(other.recovery_walk_hist);
    df_corrections.merge(other.df_corrections);
    df_matches.merge(other.df_matches);
    df_deliveries.merge(other.df_deliveries);
    inputs_used.merge(other.inputs_used);
    inputs_valid_at_spawn.merge(other.inputs_valid_at_spawn);
    inputs_same_later.merge(other.inputs_same_later);
    inputs_df_correct.merge(other.inputs_df_correct);
    inputs_hit.merge(other.inputs_hit);

    la_fetch_beyond_mispredict.merge(other.la_fetch_beyond_mispredict);
    la_exec_beyond_mispredict.merge(other.la_exec_beyond_mispredict);
    la_fetch_beyond_imiss.merge(other.la_fetch_beyond_imiss);
    la_exec_beyond_imiss.merge(other.la_exec_beyond_imiss);

    st_headswitch.merge(other.st_headswitch);
    st_recovery.merge(other.st_recovery);
    st_incomplete.merge(other.st_incomplete);
    st_empty.merge(other.st_empty);

    icache_misses.merge(other.icache_misses);
    icache_accesses.merge(other.icache_accesses);
    dcache_misses.merge(other.dcache_misses);
    dcache_accesses.merge(other.dcache_accesses);
}

void
DmtStats::registerAll(StatGroup &group) const
{
    group.addCounter("cycles", &cycles, "simulated cycles");
    group.addCounter("retired", &retired, "finally retired instructions");
    group.addCounter("early_retired", &early_retired,
                     "instructions cleared from the pipeline");
    group.addCounter("dispatched", &dispatched,
                     "instructions dispatched (normal path)");
    group.addCounter("issued", &issued, "instructions issued to FUs");
    group.addCounter("squashed_insts", &squashed_insts,
                     "dispatched instructions squashed");

    group.addCounter("threads_spawned", &threads_spawned,
                     "speculative threads created");
    group.addCounter("threads_squashed", &threads_squashed,
                     "speculative threads squashed");
    group.addCounter("threads_joined", &threads_joined,
                     "threads that retired after joining");
    group.addCounter("spawns_suppressed", &spawns_suppressed,
                     "spawns vetoed by the selection predictor");
    group.addAverage("thread_size", &thread_size,
                     "retired instructions per spawned thread");
    group.addAverage("thread_overlap", &thread_overlap,
                     "fraction executed while speculative");
    group.addAverage("active_threads", &active_threads,
                     "thread contexts active per cycle");
    group.addHistogram("thread_size_hist", &thread_size_hist,
                       "retired instructions per thread");

    group.addCounter("cond_branches", &cond_branches,
                     "conditional branches resolved");
    group.addCounter("cond_mispredicts", &cond_mispredicts,
                     "conditional branches mispredicted");
    group.addCounter("indirect_jumps", &indirect_jumps,
                     "indirect jumps resolved");
    group.addCounter("indirect_mispredicts", &indirect_mispredicts,
                     "indirect jumps mispredicted");
    group.addCounter("late_divergences", &late_divergences,
                     "recovery-time branch direction flips");

    group.addCounter("loads_issued", &loads_issued, "loads executed");
    group.addCounter("stores_issued", &stores_issued, "stores executed");
    group.addCounter("fwd_same_thread", &fwd_same_thread,
                     "store-to-load forwards within a thread");
    group.addCounter("fwd_cross_thread", &fwd_cross_thread,
                     "store-to-load forwards across threads");
    group.addCounter("load_stalls_partial", &load_stalls_partial,
                     "loads stalled on partial store overlap");
    group.addCounter("lsq_violations", &lsq_violations,
                     "memory-order violations detected");

    group.addCounter("recoveries", &recoveries,
                     "selective recovery walks");
    group.addCounter("recovery_dispatches", &recovery_dispatches,
                     "instructions re-dispatched by recovery");
    group.addHistogram("recovery_walk_hist", &recovery_walk_hist,
                       "trace-buffer entries read per recovery walk");
    group.addCounter("df_corrections", &df_corrections,
                     "dataflow-predicted input corrections");
    group.addCounter("df_matches", &df_matches,
                     "last-modifier watch matches at dispatch");
    group.addCounter("df_deliveries", &df_deliveries,
                     "input values delivered via dataflow prediction");
    group.addCounter("inputs_used", &inputs_used,
                     "live thread input registers");
    group.addCounter("inputs_valid_at_spawn", &inputs_valid_at_spawn,
                     "inputs available at the spawn point");
    group.addCounter("inputs_same_later", &inputs_same_later,
                     "inputs written after spawn with the same value");
    group.addCounter("inputs_df_correct", &inputs_df_correct,
                     "inputs corrected by dataflow prediction");
    group.addCounter("inputs_hit", &inputs_hit,
                     "inputs needing no final-check recovery");

    group.addCounter("la_fetch_beyond_mispredict",
                     &la_fetch_beyond_mispredict,
                     "retired instructions fetched beyond an unresolved "
                     "mispredicted branch");
    group.addCounter("la_exec_beyond_mispredict",
                     &la_exec_beyond_mispredict,
                     "retired instructions executed beyond an unresolved "
                     "mispredicted branch");
    group.addCounter("la_fetch_beyond_imiss", &la_fetch_beyond_imiss,
                     "retired instructions fetched during an earlier "
                     "thread's ICache miss");
    group.addCounter("la_exec_beyond_imiss", &la_exec_beyond_imiss,
                     "retired instructions executed during an earlier "
                     "thread's ICache miss");

    group.addCounter("st_headswitch", &st_headswitch,
                     "cycles stalled on head-switch validation");
    group.addCounter("st_recovery", &st_recovery,
                     "cycles stalled on head recovery");
    group.addCounter("st_incomplete", &st_incomplete,
                     "cycles stalled on an unexecuted oldest entry");
    group.addCounter("st_empty", &st_empty,
                     "cycles with an empty head trace buffer");

    group.addCounter("icache_misses", &icache_misses, "L1I misses");
    group.addCounter("icache_accesses", &icache_accesses,
                     "L1I accesses");
    group.addCounter("dcache_misses", &dcache_misses, "L1D misses");
    group.addCounter("dcache_accesses", &dcache_accesses,
                     "L1D accesses");
}

} // namespace dmt
