/**
 * @file
 * Per-thread input/output register files (paper Section 3.2.2).
 *
 * Input registers hold the thread's value-predicted register context:
 * at spawn each is either a value (parent output already computed) or a
 * physical-register watch tag that grabs the value off the writeback
 * bus.  Output registers track the thread's own live-out mappings for
 * future spawns.  The final-retirement comparison that triggers
 * recovery is performed by the engine using the `used`/`used_value`
 * bookkeeping recorded here.
 */

#ifndef DMT_DMT_IO_REGFILE_HH
#define DMT_DMT_IO_REGFILE_HH

#include <array>

#include "common/types.hh"

namespace dmt
{

/** One value-predicted thread input register. */
struct IoInput
{
    /** Speculative value available. */
    bool valid = false;
    u32 value = 0;
    /** Physical register being snooped when !valid. */
    PhysReg watch = kNoPhysReg;

    /** The thread read this register as a thread input. */
    bool used = false;
    /** Latest value handed to consumers (updated by corrections). */
    u32 used_value = 0;
    /** Oldest trace-buffer entry that read this input (recovery walks
     *  start here — nothing earlier can depend on it). */
    u64 first_use_id = 0;

    // Prediction-accuracy classification (Figure 11).
    bool valid_at_spawn = false;
    bool corrected = false;   ///< dataflow correction applied
    bool found_wrong = false; ///< a (non-dataflow) check caught a
                              ///< mispredicted value — a prediction miss
    bool finalized = false;   ///< head-switch fixed the value
};

/** One thread output register (live-out tracking). */
struct IoOutput
{
    /** The thread redefined this register itself. */
    bool redefined = false;
    PhysReg phys = kNoPhysReg;
    bool valid = false;
    u32 value = 0;
};

/** The per-thread IO register file. */
struct IoRegFile
{
    std::array<IoInput, kNumLogRegs> in;
    std::array<IoOutput, kNumLogRegs> out;

    void
    reset()
    {
        in.fill(IoInput{});
        out.fill(IoOutput{});
    }
};

} // namespace dmt

#endif // DMT_DMT_IO_REGFILE_HH
