/**
 * @file
 * Thread ordering tree (paper Section 3.1.1).  Threads spawned by the
 * same parent are kept most-recent-first; the program order of all
 * active threads is the preorder walk visiting each node before its
 * children ("top to bottom, right to left" in the paper's figure).  A
 * virtual root lets the head thread retire while keeping the rest of
 * the order intact: a removed node's children are spliced into its
 * position in the parent's child list.
 */

#ifndef DMT_DMT_ORDER_TREE_HH
#define DMT_DMT_ORDER_TREE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace dmt
{

/** Ordering tree over active thread contexts. */
class OrderTree
{
  public:
    explicit OrderTree(int max_threads);

    /** Remove everything and install @p tid as the only thread. */
    void resetWith(ThreadId tid);

    /** Insert @p child as @p parent's most recent child. */
    void addChild(ThreadId parent, ThreadId child);

    /** Remove a thread; its children splice into its position. */
    void remove(ThreadId tid);

    bool contains(ThreadId tid) const { return active[idx(tid)]; }

    /** Program order of all active threads (earliest first). */
    const std::vector<ThreadId> &order() const;

    /** First (non-speculative / head) thread; kNoThread when empty. */
    ThreadId head() const;

    /** Last thread in program order; kNoThread when empty. */
    ThreadId last() const;

    /** Thread after @p tid in program order; kNoThread when none. */
    ThreadId successor(ThreadId tid) const;

    /** Thread before @p tid in program order; kNoThread when none. */
    ThreadId predecessor(ThreadId tid) const;

    /** Strict program-order comparison of two active threads. */
    bool before(ThreadId a, ThreadId b) const;

    /** All active threads in @p tid's subtree, including @p tid. */
    std::vector<ThreadId> subtree(ThreadId tid) const;

    /**
     * subtree() into caller-owned storage (@p out is overwritten,
     * @p scratch is the walk stack) — same visit order, no allocation
     * once the vectors have warmed up.
     */
    void subtreeInto(ThreadId tid, std::vector<ThreadId> *out,
                     std::vector<ThreadId> *scratch) const;

    /** Does @p tid have no children? */
    bool
    leaf(ThreadId tid) const
    {
        return kids[idx(tid)].empty();
    }

    int size() const;

    /**
     * Structural self-check (the invariant auditor's tree leg): every
     * link bidirectional, no inactive node linked, no node reachable
     * twice (i.e. no cycles or duplicate links), every active node
     * reachable from the top list.  Safe to call on a corrupted tree —
     * it never recurses through the structure.
     * @return true when consistent, else false with @p why (if given)
     * describing the first violation found.
     */
    bool audit(std::string *why) const;

  private:
    friend class EngineInspector; // white-box corruption for tests

    size_t idx(ThreadId tid) const;
    void invalidate() { cache_valid = false; }
    void rebuild() const;
    void walk(ThreadId tid) const;

    int max_threads;
    std::vector<u8> active;
    std::vector<ThreadId> parent;           // kNoThread for top level
    std::vector<std::vector<ThreadId>> kids; // most recent first
    std::vector<ThreadId> top;               // top-level, most recent first

    mutable bool cache_valid = false;
    mutable std::vector<ThreadId> order_;
    mutable std::vector<int> pos; // order position per tid, -1 inactive
};

} // namespace dmt

#endif // DMT_DMT_ORDER_TREE_HH
