/**
 * @file
 * Issue, execute, writeback, branch resolution, thread-input delivery,
 * and the selective-recovery walk (paper Sections 3.2.3, 3.3, 3.5).
 */

#include "dmt/engine.hh"

#include <algorithm>

#include "sim/functional.hh"

namespace dmt
{

namespace
{

u32
signExtendLoad(const Instruction &inst, u32 raw)
{
    if (!inst.memSigned())
        return raw;
    const int bits = inst.memBytes() * 8;
    const u32 shift = static_cast<u32>(32 - bits);
    return static_cast<u32>(static_cast<i32>(raw << shift) >> shift);
}

} // namespace

void
DmtEngine::makeReady(DynInst *d)
{
    if (d->state == DynState::Ready)
        return;
    d->state = DynState::Ready;
    ready_q.push(d->seq, d->self);
}

void
DmtEngine::wakeOperand(DynInst *d, int op, u32 value)
{
    if (d->squashed || d->src_ready[op])
        return;
    d->src_val[op] = value;
    d->src_ready[op] = true;
    --d->n_src_pending;
    if (d->n_src_pending == 0 && d->state == DynState::Waiting)
        makeReady(d);
}

void
DmtEngine::deliverInput(ThreadContext &t, LogReg r, u32 value,
                        bool from_dataflow)
{
    IoInput &in = t.io.in[r];
    if (in.finalized)
        return;

    const bool had_value = in.valid;
    const bool changed = !had_value || in.value != value;
    in.valid = true;
    in.value = value;
    in.watch = kNoPhysReg;

    // Wake consumers that were blocked on this input.
    auto &waiters = io_waiters[static_cast<size_t>(t.id)][r];
    if (!waiters.empty()) {
        for (const IoWaiter &w : waiters) {
            DynInst *d = pool.get(w.dyn);
            if (d)
                wakeOperand(d, w.op, value);
        }
        waiters.clear();
        if (in.used)
            in.used_value = value;
        return; // consumers never executed with a wrong value
    }

    if (!in.used) {
        in.used_value = value;
        return;
    }

    if (had_value && changed) {
        // Consumers executed with a stale value: correct and recover,
        // starting the walk at the input's first use.
        in.used_value = value;
        if (from_dataflow) {
            in.corrected = true;
            ++stats_.df_corrections;
        } else {
            in.found_wrong = true;
        }
        RecoveryRequest &req = recov_req_scratch_;
        req.clear();
        req.start_tb_id = std::max(in.first_use_id, t.tb.firstId());
        req.reg_mask = 1u << r;
        requestRecovery(t, req);
    } else {
        in.used_value = value;
    }
}

void
DmtEngine::deliverPhys(PhysReg p, u32 value)
{
    prf.write(p, value);
    PhysSubs &subs = psubs[static_cast<size_t>(p)];
    for (const PhysWaiter &w : subs.waiters) {
        DynInst *d = pool.get(w.dyn);
        if (d)
            wakeOperand(d, w.op, value);
    }
    subs.waiters.clear();
    for (const IoSub &s : subs.io_subs) {
        ThreadContext *tc = get(s.tid, s.tgen);
        if (!tc)
            continue;
        IoInput &in = tc->io.in[s.reg];
        if (in.watch != p || in.valid)
            continue; // stale subscription
        deliverInput(*tc, s.reg, value, false);
    }
    subs.io_subs.clear();
}

void
DmtEngine::requestRecovery(ThreadContext &t, const RecoveryRequest &req)
{
    RecoveryFsm &f = t.recov;
    // New work wholly ahead of an active walk merges into it instead of
    // forcing a second pass over the trace.  (Setting the register
    // flags immediately is conservative for entries between the walk
    // position and the request start: they may be re-dispatched
    // unnecessarily, never missed.)
    if (f.state == RecoveryFsm::State::Walk
        && req.start_tb_id >= f.walk_pos) {
        f.dep_flags |= req.reg_mask;
        for (u64 id : req.load_roots) {
            if (id < f.walk_pos)
                continue;
            auto it = std::lower_bound(f.cur.load_roots.begin(),
                                       f.cur.load_roots.end(), id);
            // id >= walk_pos, so the insertion point is always at or
            // beyond next_root; no index fixup needed.
            if (it == f.cur.load_roots.end() || *it != id)
                f.cur.load_roots.insert(it, id);
        }
        return;
    }
    f.enqueue(req);
}

void
DmtEngine::handleLsqViolations(const std::vector<i32> &lq_ids)
{
    for (i32 id : lq_ids) {
        LsqLoad &ld = lsq.load(id);
        ThreadContext *tc = get(ld.tid, ld.tgen);
        if (!tc || !tc->tb.contains(ld.tb_id))
            continue;
        ++stats_.lsq_violations;
        emitTrace(TraceStage::Lsq, TraceEventKind::LsqViolation,
                  tc->id, tc->tb.at(ld.tb_id).pc,
                  static_cast<u64>(ld.tb_id));
        memdepTrain(tc->tb.at(ld.tb_id).pc, true);
        RecoveryRequest &req = recov_req_scratch_;
        req.clear();
        req.start_tb_id = ld.tb_id;
        req.load_roots.push_back(ld.tb_id);
        requestRecovery(*tc, req);
    }
}

// ---------------------------------------------------------------------
// Issue & execute
// ---------------------------------------------------------------------

void
DmtEngine::scheduleCompletion(DynInst *d, Cycle latency)
{
    DMT_ASSERT(latency > 0 && latency < kCalendarSlots,
               "latency %llu out of calendar range",
               static_cast<unsigned long long>(latency));
    calendar[(now_ + latency) % kCalendarSlots].push_back(d->self);
}

void
DmtEngine::executeMem(DynInst *d, TBEntry &entry)
{
    const Instruction &inst = d->inst;
    const Addr addr = memEffectiveAddr(inst, d->src_val[0]);
    const u8 bytes = static_cast<u8>(inst.memBytes());
    d->mem_addr = addr;

    if (inst.isStore()) {
        if (entry.uid == d->uid) {
            // Scratch reference: consumed before the next storeExecute.
            const std::vector<i32> &violations =
                lsq.storeExecute(entry.sq_id, addr, bytes,
                                 d->src_val[1], *this);
            handleLsqViolations(violations);
        }
        ++stats_.stores_issued;
        scheduleCompletion(d, static_cast<Cycle>(cfg.lat_alu));
        return;
    }

    // Load.
    if (entry.uid != d->uid) {
        // Superseded incarnation: complete quickly with a dummy value;
        // the writeback will not match the trace buffer tag anyway.
        d->result = 0;
        scheduleCompletion(d, static_cast<Cycle>(cfg.lat_mem));
        return;
    }

    // Memory dependence throttle: a load with a history of ordering
    // violations waits until every earlier store has computed its
    // address, then issues with exact forwarding.
    if (cfg.memdep_sync && memdepConservative(entry.pc)
        && lsq.hasUnexecutedEarlierStore(d->tid, d->tb_id, *this)) {
        d->state = DynState::Issued; // re-poll via the calendar
        calendar[(now_ + 2) % kCalendarSlots].push_back(d->self);
        d->poll_retry = true;
        return;
    }

    const auto res = lsq.loadIssue(entry.lq_id, addr, bytes, *this);
    Cycle lat = static_cast<Cycle>(cfg.lat_mem);
    u32 raw = 0;
    switch (res.kind) {
      case Lsq::LoadIssueResult::Forward:
        raw = Lsq::extractStoreBytes(lsq.store(res.store_id), addr,
                                     bytes);
        if (res.cross_thread) {
            lat += static_cast<Cycle>(cfg.lat_xthread_forward);
            ++stats_.fwd_cross_thread;
        } else {
            ++stats_.fwd_same_thread;
        }
        break;
      case Lsq::LoadIssueResult::Memory:
        raw = mem.read(addr, bytes, false);
        lat += hier.dataAccess(addr, false);
        break;
      case Lsq::LoadIssueResult::Stall:
        // Partial overlap with an earlier store: wait until it drains
        // to memory, then retry the whole access.
        ++stats_.load_stalls_partial;
        lsq.addStallWaiter(res.store_id, d->self);
        d->state = DynState::Waiting;
        return;
    }

    lsq.setLoadValue(entry.lq_id, raw);
    d->result = signExtendLoad(inst, raw);
    ++stats_.loads_issued;
    scheduleCompletion(d, lat);
}

void
DmtEngine::executeDyn(DynInst *d)
{
    const Instruction &inst = d->inst;
    ThreadContext *t = get(d->tid, d->tgen);
    if (!t || !t->tb.contains(d->tb_id)) {
        // Superseded incarnation whose entry already finally retired:
        // complete quickly; the writeback tag match will discard it.
        d->result = 0;
        scheduleCompletion(d, 1);
        return;
    }
    TBEntry &entry = t->tb.at(d->tb_id);

    switch (inst.info().opClass) {
      case OpClass::IntAlu:
        d->result = aluCompute(inst, d->src_val[0], d->src_val[1]);
        scheduleCompletion(d, static_cast<Cycle>(cfg.lat_alu));
        break;
      case OpClass::IntMul:
        d->result = aluCompute(inst, d->src_val[0], d->src_val[1]);
        scheduleCompletion(d, static_cast<Cycle>(cfg.lat_mul));
        break;
      case OpClass::IntDiv:
        d->result = aluCompute(inst, d->src_val[0], d->src_val[1]);
        scheduleCompletion(d, static_cast<Cycle>(cfg.lat_div));
        break;
      case OpClass::MemRead:
      case OpClass::MemWrite:
        executeMem(d, entry);
        break;
      case OpClass::Control:
        if (inst.isCall())
            d->result = d->pc + 4; // link value
        scheduleCompletion(d, static_cast<Cycle>(cfg.lat_alu));
        break;
      case OpClass::Other:
        if (inst.op == Opcode::OUT)
            d->result = d->src_val[0];
        scheduleCompletion(d, static_cast<Cycle>(cfg.lat_alu));
        break;
    }
}

void
DmtEngine::issueDyn(DynInst *d)
{
    d->state = DynState::Issued;
    d->issue_cycle = now_;
    ++stats_.issued;
    emitTrace(TraceStage::Execute, TraceEventKind::InstIssue, d->tid,
              d->pc, d->tb_id);
    executeDyn(d);
}

void
DmtEngine::doIssue()
{
    if (ready_q.empty())
        return;

    // Oldest-first selection by draining the age-indexed heap: seq
    // keys are unique, so pop order matches the old rebuild-and-sort
    // exactly.  Stale refs and no-longer-Ready entries filter lazily
    // at pop, as the old scan did.  Nothing becomes Ready while the
    // stage runs (issueDyn never calls makeReady), so the drain sees
    // precisely the pre-stage population.
    std::vector<ReadyQueue::Item> &retry = issue_retry_scratch_;
    retry.clear();
    while (!ready_q.empty()) {
        const ReadyQueue::Item item = ready_q.top();
        ready_q.pop();
        DynInst *d = pool.get(item.ref);
        if (!d || d->squashed || d->state != DynState::Ready)
            continue;
        if (!fus.tryIssue(d->inst.info().opClass, now_)) {
            retry.push_back(item); // retry next cycle, same age
            continue;
        }
        issueDyn(d);
    }
    for (const ReadyQueue::Item &item : retry)
        ready_q.push(item.seq, item.ref);
}

// ---------------------------------------------------------------------
// Writeback
// ---------------------------------------------------------------------

void
DmtEngine::resolveControl(DynInst *d, TBEntry &entry)
{
    const Instruction &inst = d->inst;
    ThreadContext &t = *get(d->tid, d->tgen);

    bool taken = true;
    Addr actual;
    if (inst.isCondBranch()) {
        taken = branchTaken(inst, d->src_val[0], d->src_val[1]);
        actual = taken ? inst.branchTarget(d->pc) : d->pc + 4;
    } else if (inst.isIndirect()) {
        actual = d->src_val[0];
    } else {
        actual = inst.jumpTarget();
    }

    if (d->is_recovery) {
        const bool div = actual != entry.trace_next_pc;
        if (div && cfg.early_divergence_repair) {
            // Repair the trace now: discard everything younger in this
            // thread and refetch from the corrected direction.  Cheaper
            // than the paper's retirement-time flush; later threads are
            // untouched either way (control independence).
            ++stats_.late_divergences;
            emitTrace(TraceStage::Execute,
                      TraceEventKind::LateDivergence, t.id, d->pc,
                      actual);
            ++t.divergence_repairs;
            entry.trace_next_pc = actual;
            entry.divergence = false;
            const u64 eid = entry.id;
            inThreadSquash(t, eid + 1, actual, nullptr);
            t.bstate.history = 0; // no checkpoint survives this late
            return;
        }
        // Paper Section 3.3: handled at the branch's final retirement.
        entry.divergence = div;
        entry.divergence_target = actual;
        if (div) {
            ++stats_.late_divergences;
            emitTrace(TraceStage::Execute,
                      TraceEventKind::LateDivergence, t.id, d->pc,
                      actual);
        }
        return;
    }

    entry.resolved_once = true;
    if (inst.isCondBranch()) {
        ++stats_.cond_branches;
        bpu.updateCond(d->pc, entry.history_used, taken);
    } else if (inst.isIndirect()) {
        ++stats_.indirect_jumps;
        bpu.updateIndirect(d->pc, actual);
    }

    if (actual == entry.trace_next_pc) {
        t.checkpoints.erase(entry.id);
        return;
    }

    // Intra-thread misprediction: squash younger and redirect.
    if (inst.isCondBranch())
        ++stats_.cond_mispredicts;
    else if (inst.isIndirect())
        ++stats_.indirect_mispredicts;
    emitTrace(TraceStage::Execute, TraceEventKind::BranchMispredict,
              t.id, d->pc, actual);

    if (cfg.isDmt())
        entry.branch_episode = branch_eps.open(entry.fetch_cycle, now_);
    entry.trace_next_pc = actual;

    const BranchCheckpoint *found = t.checkpoints.find(entry.id);
    DMT_ASSERT(found, "mispredicted branch without checkpoint");
    const BranchCheckpoint cp = *found; // flat: stack copy, no alloc
    t.checkpoints.erase(entry.id);

    inThreadSquash(t, entry.id + 1, actual, &cp);

    // Reconstruct sequencing state just after the corrected transfer.
    t.bstate = cp.bstate;
    if (inst.isCondBranch()) {
        t.bstate.history =
            bpu.gshare().pushHistory(t.bstate.history, taken);
    } else if (inst.isReturn()) {
        t.bstate.ras.pop();
    } else if (inst.op == Opcode::JALR) {
        t.bstate.ras.push(d->pc + 4);
    }
}

void
DmtEngine::completeDyn(DynInst *d)
{
    d->state = DynState::Done;
    d->complete_cycle = now_;
    emitTrace(TraceStage::Execute, TraceEventKind::InstComplete, d->tid,
              d->pc, d->tb_id);

    // Fault injection: deliver a corrupted load value, modelled as an
    // over-aggressive value-speculated load.  The corruption is paired
    // with a load-root recovery request — exactly the shape of an LSQ
    // ordering violation — so the recovery walk re-issues the load and
    // re-executes its dependents before anything can finally retire
    // (lowWater() holds retirement below the walk).  Recovery
    // incarnations are exempt or the walk would never converge.
    if (injector_.enabled() && d->inst.isLoad() && !d->is_recovery) {
        ThreadContext *lt = get(d->tid, d->tgen);
        if (lt && lt->tb.contains(d->tb_id)
            && lt->tb.at(d->tb_id).uid == d->uid
            && injector_.shouldInject(FaultSite::LoadValue)) {
            d->result =
                injector_.corruptValue(FaultSite::LoadValue, d->result);
            RecoveryRequest &req = recov_req_scratch_;
            req.clear();
            req.start_tb_id = d->tb_id;
            req.load_roots.push_back(d->tb_id);
            requestRecovery(*lt, req);
        }
    }

    if (d->dest_phys != kNoPhysReg)
        deliverPhys(d->dest_phys, d->result);

    // Dataflow-predicted last-modifier deliveries.
    for (const auto &target : d->df_targets) {
        ThreadContext *tc = get(target.tid, target.tgen);
        if (tc) {
            ++stats_.df_deliveries;
            u32 value = d->result;
            // Fault injection: corrupt the dataflow-predicted delivery.
            // The target thread consumes the wrong input like any value
            // misprediction; the head-switch final check repairs it.
            if (injector_.shouldInject(FaultSite::DataflowValue)) {
                value =
                    injector_.corruptValue(FaultSite::DataflowValue,
                                           value);
            }
            deliverInput(*tc, target.reg, value, true);
        }
    }

    ThreadContext *t = get(d->tid, d->tgen);
    if (!t || !t->tb.contains(d->tb_id))
        return;
    TBEntry &entry = t->tb.at(d->tb_id);
    if (entry.uid != d->uid)
        return; // superseded incarnation: trace-buffer tag mismatch

    entry.result = d->result;
    entry.result_valid = true;
    entry.completed = true;
    entry.executed_ever = true;
    if (entry.first_exec_cycle == 0)
        entry.first_exec_cycle = d->issue_cycle;
    ++t->exec_total;
    if (!isHead(*t))
        ++t->exec_while_spec;

    if (d->inst.isControl())
        resolveControl(d, entry);
}

void
DmtEngine::doWriteback()
{
    auto &slot = calendar[now_ % kCalendarSlots];
    if (slot.empty())
        return;
    // completeDyn can trigger squashes that touch the calendar only by
    // marking instructions squashed — the slot vector itself is stable
    // (scheduleCompletion asserts latency > 0, so nothing lands in the
    // current slot).  Ping-pong with a member scratch: the slot gets
    // the scratch's empty-but-capacitied buffer back, so neither side
    // ever frees its allocation.
    wb_scratch_.swap(slot);
    for (const DynRef &ref : wb_scratch_) {
        DynInst *d = pool.get(ref);
        if (!d || d->squashed || d->state != DynState::Issued)
            continue;
        if (d->poll_retry) {
            // Throttled load: retry the memory access.
            d->poll_retry = false;
            executeDyn(d);
            continue;
        }
        completeDyn(d);
    }
    wb_scratch_.clear();
}

// ---------------------------------------------------------------------
// Selective recovery walk
// ---------------------------------------------------------------------

bool
DmtEngine::redispatchEntry(ThreadContext &t, TBEntry &entry)
{
    ++entry.uid;
    entry.result_valid = false;
    entry.completed = false;
    entry.divergence = false;

    if (entry.has_dest) {
        // Any previous incarnation's register is owned by its DynInst
        // (freed at that instruction's early retirement or squash).
        entry.cur_phys = allocPhys();
    }

    DynInst *d = pool.alloc();
    d->seq = next_seq++;
    d->tid = t.id;
    d->tgen = t.gen;
    d->tb_id = entry.id;
    d->uid = entry.uid;
    d->inst = entry.inst;
    d->pc = entry.pc;
    d->is_recovery = true;
    d->fetch_cycle = entry.fetch_cycle;
    d->dispatch_cycle = now_;
    d->dest_phys = entry.has_dest ? entry.cur_phys : kNoPhysReg;

    resolveOperand(t, entry, 0, d);
    resolveOperand(t, entry, 1, d);

    ++window_used;
    ++entry.dispatch_count;
    ++stats_.recovery_dispatches;
    t.pipe.push_back(d->self);

    if (d->n_src_pending == 0)
        makeReady(d);
    return true;
}

void
DmtEngine::recoveryStepThread(ThreadContext &t, int &dispatch_budget)
{
    RecoveryFsm &f = t.recov;

    if (f.state == RecoveryFsm::State::Idle) {
        if (f.has_pending) {
            RecoveryRequest &r = f.pending;
            f.has_pending = false; // consumed either way
            // Prune roots squashed or retired in the meantime.
            std::erase_if(r.load_roots, [&](u64 id) {
                return !t.tb.contains(id);
            });
            if (r.start_tb_id < t.tb.firstId())
                r.start_tb_id = t.tb.firstId();
            if (!r.load_roots.empty())
                r.start_tb_id = std::min(r.start_tb_id,
                                         r.load_roots.front());
            if (r.start_tb_id < t.tb.endId()
                && (r.reg_mask != 0 || !r.load_roots.empty())) {
                f.cur.assignFrom(r);
                f.state = RecoveryFsm::State::Latency;
                f.latency_left = cfg.tb_latency;
                ++stats_.recoveries;
                emitTrace(TraceStage::Recovery,
                          TraceEventKind::RecoveryStart, t.id, 0,
                          f.cur.start_tb_id);
                ++t.recoveries_started;
            }
        }
        if (f.state != RecoveryFsm::State::Latency)
            return;
    }

    if (f.state == RecoveryFsm::State::Latency) {
        if (f.latency_left > 0) {
            --f.latency_left;
            return;
        }
        f.state = RecoveryFsm::State::Walk;
        f.walk_pos = f.cur.start_tb_id;
        f.dep_flags = f.cur.reg_mask;
        f.next_root = 0;
    }

    int reads = cfg.tb_read_block == 0 ? 1 << 30 : cfg.tb_read_block;
    while (reads > 0 && f.walk_pos < t.tb.endId()) {
        TBEntry &entry = t.tb.at(f.walk_pos);

        // Skip roots that disappeared behind the walk.
        while (f.next_root < f.cur.load_roots.size()
               && f.cur.load_roots[f.next_root] < f.walk_pos) {
            ++f.next_root;
        }
        const bool is_root = f.next_root < f.cur.load_roots.size()
            && f.cur.load_roots[f.next_root] == f.walk_pos;

        bool dep = is_root;
        if (!dep) {
            for (int i = 0; i < 2; ++i) {
                const SrcRef &s = entry.src[i];
                if (s.kind != SrcRef::None
                    && ((f.dep_flags >> s.reg) & 1)) {
                    dep = true;
                }
            }
        }

        if (dep) {
            const int limit = isHead(t)
                ? cfg.window_size
                : cfg.window_size - 2 * cfg.fetch_block;
            if (dispatch_budget <= 0 || window_used >= limit)
                return; // resume here next cycle
            redispatchEntry(t, entry);
            --dispatch_budget;
            if (is_root)
                ++f.next_root;
            if (entry.has_dest)
                f.dep_flags |= 1u << entry.dest;
        } else if (entry.has_dest) {
            f.dep_flags &= ~(1u << entry.dest);
        }

        ++f.walk_pos;
        --reads;

        if (f.dep_flags == 0
            && f.next_root >= f.cur.load_roots.size()) {
            f.state = RecoveryFsm::State::Idle;
            noteRecoveryDone(t);
            return;
        }
    }

    if (f.walk_pos >= t.tb.endId()) {
        f.state = RecoveryFsm::State::Idle;
        noteRecoveryDone(t);
    }
}

void
DmtEngine::noteRecoveryDone(ThreadContext &t)
{
    const u64 walked = t.recov.walk_pos > t.recov.cur.start_tb_id
        ? t.recov.walk_pos - t.recov.cur.start_tb_id : 0;
    stats_.recovery_walk_hist.sample(static_cast<double>(walked));
    emitTrace(TraceStage::Recovery, TraceEventKind::RecoveryEnd, t.id,
              0, walked);
}

void
DmtEngine::doRecovery()
{
    // Recoveries are events, not the steady state: gate the stage on a
    // cheap flat scan so idle cycles skip the order walk entirely.
    bool any_busy = false;
    for (const auto &t : threads) {
        if (t->active && t->recov.busy()) {
            any_busy = true;
            break;
        }
    }
    if (!any_busy)
        return;

    // Each trace buffer has its own recovery pipe (Figure 1c); the
    // dispatch width applies per thread.  recoveryStepThread never
    // spawns or squashes, so the cached order is stable and can be
    // iterated by reference.
    const std::vector<ThreadId> &order = tree.order();
    for (ThreadId tid : order) {
        ThreadContext &t = ctx(tid);
        if (t.active && t.recov.busy()) {
            int budget = cfg.recovery_dispatch_width;
            recoveryStepThread(t, budget);
        }
    }
}

} // namespace dmt
