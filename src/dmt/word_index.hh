/**
 * @file
 * Address-to-entries index for the LSQ.  Replaces
 * std::unordered_map<Addr, std::vector<i32>>, which allocated a node
 * per touched word and a vector per chain — the dominant allocation
 * source in memory-heavy workloads.  Design:
 *
 *  - open-addressed power-of-two cell table with linear probing, one
 *    cell per distinct word address currently indexed;
 *  - pooled chain storage: every LSQ id lives in at most one chain at
 *    a time, so chains are intrusive singly-linked lists through a
 *    flat next_[id] array sized once at construction;
 *  - empty chains leave a tombstone (used cell, head == -1) so later
 *    probes stay valid; tombstones are dropped when the table rehashes.
 *
 * Steady state allocates nothing: the word working set is bounded by
 * queue capacity, so after warmup the cell table stops rehashing.
 *
 * Chain order is most-recently-inserted first — NOT the insertion
 * order the old map's vectors kept.  Every LSQ consumer either selects
 * a unique extremum under a strict total order or sorts its result, so
 * iteration order is immaterial (see Lsq::loadIssue/storeExecute).
 */

#ifndef DMT_DMT_WORD_INDEX_HH
#define DMT_DMT_WORD_INDEX_HH

#include <cstddef>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace dmt
{

class WordIndex
{
  public:
    /** @p max_ids bounds the LSQ ids this index will ever see. */
    void
    init(size_t max_ids)
    {
        next_.assign(max_ids, -1);
        cells_.assign(16, Cell{});
        scratch_.reserve(16);
        used_cells_ = 0;
    }

    /** Push @p id onto @p word's chain (id must not be chained). */
    void
    insert(Addr word, i32 id)
    {
        maybeGrow();
        Cell &c = cellFor(word);
        next_[static_cast<size_t>(id)] = c.head;
        c.head = id;
    }

    /** Unlink @p id from @p word's chain (must be present). */
    void
    remove(Addr word, i32 id)
    {
        Cell *c = findCell(word);
        DMT_ASSERT(c, "word index cell missing");
        i32 *link = &c->head;
        while (*link != id) {
            DMT_ASSERT(*link >= 0, "id %d missing from word index", id);
            link = &next_[static_cast<size_t>(*link)];
        }
        *link = next_[static_cast<size_t>(id)];
        next_[static_cast<size_t>(id)] = -1;
        // An emptied cell stays as a tombstone so probe chains that
        // pass through it keep working; rehash reclaims it.
    }

    /** First id on @p word's chain, or -1. */
    i32
    chainHead(Addr word) const
    {
        const Cell *c = findCell(word);
        return c ? c->head : -1;
    }

    /** Successor of @p id on its chain, or -1. */
    i32
    chainNext(i32 id) const
    {
        return next_[static_cast<size_t>(id)];
    }

    /** Visit every non-empty chain: f(word, head_id). */
    template <typename F>
    void
    forEachChain(F &&f) const
    {
        for (const Cell &c : cells_) {
            if (c.used && c.head >= 0)
                f(c.word, c.head);
        }
    }

  private:
    struct Cell
    {
        Addr word = 0;
        i32 head = -1;
        bool used = false;
    };

    static size_t
    hashWord(Addr w)
    {
        u64 x = w;
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 29;
        return static_cast<size_t>(x);
    }

    const Cell *
    findCell(Addr word) const
    {
        const size_t mask = cells_.size() - 1;
        for (size_t i = hashWord(word) & mask;; i = (i + 1) & mask) {
            const Cell &c = cells_[i];
            if (!c.used)
                return nullptr;
            if (c.word == word)
                return &c;
        }
    }

    Cell *
    findCell(Addr word)
    {
        return const_cast<Cell *>(
            static_cast<const WordIndex *>(this)->findCell(word));
    }

    /** Existing cell for @p word, or a claimed tombstone/free cell. */
    Cell &
    cellFor(Addr word)
    {
        const size_t mask = cells_.size() - 1;
        Cell *tombstone = nullptr;
        for (size_t i = hashWord(word) & mask;; i = (i + 1) & mask) {
            Cell &c = cells_[i];
            if (!c.used) {
                // Word not present; claim the earliest tombstone on
                // the probe path, else this free cell.
                Cell &claim = tombstone ? *tombstone : c;
                if (!claim.used)
                    ++used_cells_;
                claim.word = word;
                claim.head = -1;
                claim.used = true;
                return claim;
            }
            if (c.word == word)
                return c;
            if (!tombstone && c.head < 0)
                tombstone = &c;
        }
    }

    void
    maybeGrow()
    {
        // Keep load factor (tombstones included) under ~0.7.
        if (used_cells_ * 10 < cells_.size() * 7)
            return;
        size_t live = 0;
        for (const Cell &c : cells_) {
            if (c.used && c.head >= 0)
                ++live;
        }
        size_t cap = cells_.size();
        while (cap < (live + 1) * 2)
            cap *= 2;
        // Tombstone-dropping rehashes recur in steady state (words
        // empty out constantly), so rebuild into a persistent scratch
        // buffer and swap: once cap stops growing, this allocates
        // nothing.
        scratch_.assign(cap, Cell{});
        used_cells_ = 0;
        const size_t mask = cap - 1;
        for (const Cell &c : cells_) {
            if (!c.used || c.head < 0)
                continue; // tombstones die here
            size_t i = hashWord(c.word) & mask;
            while (scratch_[i].used)
                i = (i + 1) & mask;
            scratch_[i] = c;
            ++used_cells_;
        }
        cells_.swap(scratch_);
    }

    std::vector<Cell> cells_;
    /** Rehash target, kept allocated between rehashes (ping-pong). */
    std::vector<Cell> scratch_;
    size_t used_cells_ = 0; ///< used cells, tombstones included
    /** Intrusive chain links, indexed by LSQ id. */
    std::vector<i32> next_;
};

} // namespace dmt

#endif // DMT_DMT_WORD_INDEX_HH
