/**
 * @file
 * Register dataflow predictor (paper Section 3.4).  A history buffer
 * indexed by thread start address remembers which input registers were
 * mispredicted the last time a thread ran, together with the low
 * address bits of each register's *last modifier* — the prior-thread
 * instruction that produced the correct live-out.  When the same thread
 * is spawned again, instructions in predecessor threads whose PC
 * matches a predicted last-modifier address are marked so their
 * writeback updates the spawned thread's input register and starts a
 * recovery sequence immediately, instead of waiting for the prior
 * thread's final retirement.
 */

#ifndef DMT_DMT_DATAFLOW_PRED_HH
#define DMT_DMT_DATAFLOW_PRED_HH

#include <vector>

#include "common/types.hh"

namespace dmt
{

/** One (input register, last-modifier address) prediction. */
struct DfItem
{
    LogReg reg = 0;
    u16 modpc_lo = 0; ///< low PC bits of the last modifier
};

/** Per-start-address history entry. */
struct DfEntry
{
    bool valid = false;
    Addr start_pc = 0;
    int n = 0;
    static constexpr int kMaxItems = 4;
    DfItem items[kMaxItems];
};

/** Direct-mapped last-modifier history buffer. */
class DataflowPredictor
{
  public:
    explicit DataflowPredictor(int entries = 1024);

    /** Prediction for a thread starting at @p start_pc, or nullptr. */
    const DfEntry *lookup(Addr start_pc) const;

    /** Record mispredicted inputs and their last modifiers. */
    void record(Addr start_pc, const std::vector<DfItem> &items);

    /** Drop the entry for @p start_pc (all inputs predicted well). */
    void clear(Addr start_pc);

  private:
    size_t index(Addr pc) const;

    std::vector<DfEntry> table;
};

} // namespace dmt

#endif // DMT_DMT_DATAFLOW_PRED_HH
