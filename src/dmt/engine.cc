#include "dmt/engine.hh"

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "common/env.hh"
#include "common/strutil.hh"
#include "fault/auditor.hh"
#include "fault/postmortem.hh"
#include "sim/arch_state.hh"
#include "sim/checkpoint.hh"
#include "sim/functional.hh"

namespace dmt
{

DmtEngine::DmtEngine(const SimConfig &cfg_, const Program &prog_,
                     const Checkpoint *resume)
    : cfg(cfg_),
      prog(prog_),
      hier(cfg_.mem),
      bpu(cfg_.bpred),
      prf(cfg_.physRegCount()),
      lsq(cfg_.lqSize(), cfg_.sqSize(), cfg_.max_threads),
      tree(cfg_.max_threads),
      spawn_pred(cfg_.spawn_table_bits, cfg_.max_threads,
                 cfg_.min_thread_size),
      df_pred(),
      fus(cfg_.unlimited_fus, cfg_.fus, cfg_.lat_div)
{
    cfg.validate();
    if (const char *dbg = std::getenv("DMT_DEBUG"))
        debug_trace = dbg[0] != '0';
    cfg.watchdog_cycles = parseEnvU64("DMT_WATCHDOG", cfg.watchdog_cycles);
    cfg.audit_period = static_cast<int>(
        parseEnvU64("DMT_AUDIT", static_cast<u64>(cfg.audit_period), 0,
                    static_cast<u64>(INT32_MAX)));
    if (const char *crash = std::getenv("DMT_CRASH_FILE"))
        cfg.crash_file = crash;
    tracer_.configure(traceOptionsFromEnv(cfg.trace));
    injector_.configure(faultOptionsFromEnv(cfg.fault));
    if (resume) {
        DMT_ASSERT(!resume->state.halted,
                   "cannot resume from a halted checkpoint");
        DMT_ASSERT(resume->prog_hash == Checkpoint::programHash(prog),
                   "checkpoint was taken against a different program");
        mem = resume->mem;
    } else {
        mem.loadProgram(prog);
    }
    if (cfg.check_golden) {
        checker = resume
            ? std::make_unique<GoldenChecker>(prog, resume->state,
                                              resume->mem)
            : std::make_unique<GoldenChecker>(prog);
    }
    warmup_pending_ = cfg.warmup_retired > 0;

    psubs.resize(static_cast<size_t>(prf.count()));
    memdep.assign(kMemdepEntries, 0);
    io_waiters.resize(static_cast<size_t>(cfg.max_threads));

    // Pre-size output accumulators and per-slot waiter lists so
    // steady-state growth is rare (the hot loop itself never shrinks
    // these; see DESIGN.md section 11).  The per-register waiter
    // reserves cut the long per-slot warmup tail: without them each of
    // the hundreds of physical registers grows its own vector the
    // first few times it happens to collect subscribers.
    out_stream.reserve(4096);
    for (PhysSubs &s : psubs) {
        s.waiters.reserve(16);
        s.io_subs.reserve(16);
    }
    for (auto &per_thread : io_waiters) {
        for (auto &waiters : per_thread)
            waiters.reserve(16);
    }
    loop_watches.reserve(8);
    ready_q.reserve(static_cast<size_t>(cfg.window_size));
    issue_retry_scratch_.reserve(static_cast<size_t>(cfg.window_size));
    // A single calendar slot can in principle receive every in-flight
    // instruction (they all pick a completion cycle at issue), so
    // reserve each slot to the window bound.
    for (auto &slot : calendar)
        slot.reserve(static_cast<size_t>(cfg.window_size));
    drain_q.reserve(64);

    threads.reserve(static_cast<size_t>(cfg.max_threads));
    for (int i = 0; i < cfg.max_threads; ++i) {
        threads.emplace_back(std::make_unique<ThreadContext>());
        threads.back()->id = i;
        threads.back()->active = false;
    }

    // Bring up the initial (architectural) thread — at the program's
    // entry conditions, or at the checkpoint's mid-stream state.
    ThreadContext &t0 = *threads[0];
    t0.resetFor(0, cfg.tb_size);
    t0.start_pc = t0.pc = resume ? resume->state.pc : prog.entry;
    tree.resetWith(0);

    // Architectural initial register values are exact thread inputs.
    ArchState init;
    if (resume)
        init = resume->state;
    else
        init.reset(prog);
    for (int r = 0; r < kNumLogRegs; ++r) {
        IoInput &in = t0.io.in[static_cast<size_t>(r)];
        in.valid = true;
        in.value = init.regs[static_cast<size_t>(r)];
        in.valid_at_spawn = true;
        in.finalized = true;
        retire_regs[static_cast<size_t>(r)] =
            init.regs[static_cast<size_t>(r)];
    }
    head_validated = true;

    emitTrace(TraceStage::Thread, TraceEventKind::ThreadSpawn, 0,
              t0.start_pc, static_cast<u64>(static_cast<i64>(kNoThread)),
              0);
}

void
DmtEngine::beginMeasurement()
{
    warmup_pending_ = false;
    // Zero the stat block: measured cycles/retired/speculation counts
    // start at the warmup boundary.  The hierarchy keeps its (warm)
    // state; only the counts accumulated so far are subtracted from
    // the end-of-run snapshot.
    stats_ = DmtStats{};
    meas_il_miss_base_ = hier.l1i().misses();
    meas_il_hit_base_ = hier.l1i().hits();
    meas_dl_miss_base_ = hier.l1d().misses();
    meas_dl_hit_base_ = hier.l1d().hits();
}

void
DmtEngine::traceSampleTick()
{
    TraceSample s;
    s.cycle = now_;
    s.retired = stats_.retired.value();
    s.early_retired = stats_.early_retired.value();
    s.dispatched = stats_.dispatched.value();
    s.issued = stats_.issued.value();
    s.threads_spawned = stats_.threads_spawned.value();
    s.threads_squashed = stats_.threads_squashed.value();
    s.recoveries = stats_.recoveries.value();
    s.recovery_dispatches = stats_.recovery_dispatches.value();
    s.lsq_violations = stats_.lsq_violations.value();
    s.active_threads = tree.size();
    s.window_used = window_used;
    tracer_.sample(s);
}

ThreadContext &
DmtEngine::ctx(ThreadId tid)
{
    DMT_ASSERT(tid >= 0 && tid < cfg.max_threads, "bad tid %d", tid);
    return *threads[static_cast<size_t>(tid)];
}

const ThreadContext &
DmtEngine::ctx(ThreadId tid) const
{
    DMT_ASSERT(tid >= 0 && tid < cfg.max_threads, "bad tid %d", tid);
    return *threads[static_cast<size_t>(tid)];
}

ThreadContext *
DmtEngine::get(ThreadId tid, u32 gen)
{
    if (tid < 0 || tid >= cfg.max_threads)
        return nullptr;
    ThreadContext &t = *threads[static_cast<size_t>(tid)];
    return t.active && t.gen == gen ? &t : nullptr;
}

bool
DmtEngine::isHead(const ThreadContext &t) const
{
    return tree.head() == t.id;
}

PhysReg
DmtEngine::allocPhys()
{
    const PhysReg p = prf.alloc();
    DMT_ASSERT(p != kNoPhysReg,
               "physical register file exhausted (%d regs)", prf.count());
    // Any subscriptions left over from the previous incarnation of this
    // register are stale by construction (see engine.hh ownership
    // rules); drop them so the lists cannot grow without bound.
    psubs[static_cast<size_t>(p)].waiters.clear();
    psubs[static_cast<size_t>(p)].io_subs.clear();
    return p;
}

bool
DmtEngine::memdepConservative(Addr pc) const
{
    return memdep[(pc >> 2) & (kMemdepEntries - 1)] >= 2;
}

void
DmtEngine::memdepTrain(Addr pc, bool violated)
{
    u8 &c = memdep[(pc >> 2) & (kMemdepEntries - 1)];
    if (violated)
        c = static_cast<u8>(std::min<int>(c + 2, 3));
    else if (c > 0)
        --c;
}

bool
DmtEngine::memBefore(ThreadId tid_a, u64 tb_a, ThreadId tid_b,
                     u64 tb_b) const
{
    if (tid_a == tid_b)
        return tb_a < tb_b;
    return tree.before(tid_a, tid_b);
}

bool
DmtEngine::goldenOk() const
{
    return !checker || checker->ok();
}

std::string
DmtEngine::goldenError() const
{
    return checker ? checker->error() : std::string();
}

void
DmtEngine::step()
{
    DMT_ASSERT(!done_, "step() after completion");

    fus.newCycle(now_);

    doWriteback();
    doRecovery();
    doDispatch();
    doIssue();
    doFetch();
    doEarlyRetire();
    doStoreDrain();
    doFinalRetire();
    checkThreadMispredictions();

    stats_.active_threads.sample(static_cast<double>(tree.size()));

    if (tracer_.sampleDue(now_))
        traceSampleTick();

    // Prune lookahead episodes that can no longer match: any retiring
    // instruction was fetched at most a full pipeline lifetime ago.
    if ((now_ & 0x3FF) == 0) {
        const Cycle horizon = now_ > 100000 ? now_ - 100000 : 0;
        branch_eps.prune(horizon);
        imiss_eps.prune(horizon);
    }

    // Statistics warmup boundary: once enough instructions have finally
    // retired, restart measurement with warm caches/predictors.
    if (warmup_pending_ && retired_total >= cfg.warmup_retired)
        beginMeasurement();

    ++now_;
    ++stats_.cycles;

    // Invariant audit between cycles (zero cost when off: one compare).
    if (cfg.audit_period > 0
        && now_ % static_cast<Cycle>(cfg.audit_period) == 0) {
        InvariantAuditor::check(*this);
    }

    if (cfg.max_retired > 0 && retired_total >= cfg.max_retired)
        done_ = true;
    if (cfg.max_cycles > 0 && now_ >= cfg.max_cycles)
        done_ = true;
}

void
DmtEngine::run()
{
    u64 last_retired = 0;
    Cycle last_progress = 0;
    // Wall-clock deadline rides the watchdog loop: checked every 4096
    // cycles (one clock read per few ms of host time) so a run that is
    // retiring — and therefore never trips the watchdog — still cannot
    // exceed its caller's time budget.
    const bool deadline_armed = cfg.hasDeadline();
    while (!done_) {
        step();
        if (retired_total != last_retired) {
            last_retired = retired_total;
            last_progress = now_;
        } else if (cfg.watchdog_cycles > 0
                   && now_ - last_progress > cfg.watchdog_cycles) {
            watchdogExpired();
        }
        if (deadline_armed && (now_ & 0xFFF) == 0
            && std::chrono::steady_clock::now() >= cfg.deadline) {
            panic("deadline expired at cycle %llu (retired %llu of "
                  "budget %llu)",
                  static_cast<unsigned long long>(now_),
                  static_cast<unsigned long long>(retired_total),
                  static_cast<unsigned long long>(cfg.max_retired));
        }
    }

    // Snapshot cache statistics into the stat block, net of whatever
    // accumulated before the measurement window opened.
    const u64 il_miss = hier.l1i().misses() - meas_il_miss_base_;
    const u64 il_hit = hier.l1i().hits() - meas_il_hit_base_;
    const u64 dl_miss = hier.l1d().misses() - meas_dl_miss_base_;
    const u64 dl_hit = hier.l1d().hits() - meas_dl_hit_base_;
    stats_.icache_misses += il_miss;
    stats_.icache_accesses += il_miss + il_hit;
    stats_.dcache_misses += dl_miss;
    stats_.dcache_accesses += dl_miss + dl_hit;

    tracer_.finish();
}

void
DmtEngine::watchdogExpired()
{
    // Name the context that stopped retiring: final retirement only
    // ever happens from the head thread, so describe its state.
    const ThreadId head = tree.head();
    std::string culprit;
    if (head == kNoThread) {
        culprit = "no active thread holds the retirement token";
    } else {
        const ThreadContext &h = ctx(head);
        const char *recov_state =
            h.recov.state == RecoveryFsm::State::Walk      ? "walking"
            : h.recov.state == RecoveryFsm::State::Latency ? "in latency"
                                                           : "idle";
        culprit = strprintf(
            "head tid %d stopped retiring (pc=0x%x, %d trace-buffer "
            "entries [%llu..%llu), %zu in pipe, %s, recovery %s with "
            "%zu queued, %d threads active)",
            head, h.pc, h.tb.size(),
            static_cast<unsigned long long>(h.tb.firstId()),
            static_cast<unsigned long long>(h.tb.endId()),
            h.pipe.size(), h.stopped ? "stopped" : "fetching",
            recov_state,
            static_cast<size_t>(h.recov.has_pending ? 1 : 0),
            tree.size());
    }
    std::string details = Postmortem::dump(*this, "watchdog", culprit);
    panicWithDetails(std::move(details),
                     "no retirement progress for %llu cycles at cycle "
                     "%llu (retired %llu): %s",
                     static_cast<unsigned long long>(cfg.watchdog_cycles),
                     static_cast<unsigned long long>(now_),
                     static_cast<unsigned long long>(retired_total),
                     culprit.c_str());
}

// ---------------------------------------------------------------------
// Squash machinery
// ---------------------------------------------------------------------

void
DmtEngine::squashDyn(DynInst *d)
{
    if (d->squashed)
        return;
    d->squashed = true;
    ++stats_.squashed_insts;
    if (!d->early_retired) {
        --window_used;
        if (d->dest_phys != kNoPhysReg)
            prf.free(d->dest_phys);
    }
    // The slab slot is released lazily when the pipe FIFO pops it; all
    // other references (ready queue, calendar, waiter lists) check the
    // squashed flag / generation.
}

void
DmtEngine::releaseEntryState(ThreadContext &t, TBEntry &entry,
                             bool squashed)
{
    if (entry.lq_id >= 0) {
        lsq.freeLoad(entry.lq_id);
        entry.lq_id = -1;
    }
    if (squashed && entry.sq_id >= 0) {
        // Scratch reference: fully consumed before the next freeStore.
        const Lsq::FreeStoreResult &result =
            lsq.freeStore(entry.sq_id, true);
        entry.sq_id = -1;
        handleLsqViolations(result.orphaned_loads);
        for (const DynRef &ref : result.stall_waiters) {
            DynInst *d = pool.get(ref);
            if (d && !d->squashed && d->state == DynState::Waiting)
                makeReady(d);
        }
    }
    if (squashed) {
        if (entry.branch_episode)
            branch_eps.drop(entry.branch_episode);
        if (entry.imiss_episode)
            imiss_eps.drop(entry.imiss_episode);
        if (entry.child_tid != kNoThread) {
            ThreadContext *child = get(entry.child_tid, entry.child_gen);
            if (child)
                squashThreadTree(child->id);
            entry.child_tid = kNoThread;
        }
    }
}

void
DmtEngine::inThreadSquash(ThreadContext &t, u64 from_tb_id,
                          Addr new_fetch_pc,
                          const BranchCheckpoint *checkpoint)
{
    if (debug_trace)
        std::fprintf(stderr, "[%llu] inThreadSquash tid=%d from=%llu "
                     "redirect=0x%x\n", (unsigned long long)now_, t.id,
                     (unsigned long long)from_tb_id, new_fetch_pc);
    // Frontend: everything fetched but not dispatched is younger than
    // any dispatched instruction.
    t.fq.clear();
    t.pending_imiss_episode = 0;

    // Squash in-flight incarnations belonging to dying entries.
    for (const DynRef &ref : t.pipe) {
        DynInst *d = pool.get(ref);
        if (d && !d->squashed && d->tb_id >= from_tb_id)
            squashDyn(d);
    }

    // Release per-entry state, newest first (child spawns etc.).
    for (u64 id = t.tb.endId(); id > from_tb_id; --id)
        releaseEntryState(t, t.tb.at(id - 1), true);
    t.tb.truncateFrom(from_tb_id);

    // Restore sequencing state.
    if (checkpoint) {
        t.tb.restoreWriters(checkpoint->writers);
        t.bstate = checkpoint->bstate;
        // loop_spawned is append-only between checkpoint and restore,
        // so truncating to the checkpoint's mark restores the exact
        // set (older checkpoints hold smaller marks, so their prefixes
        // survive this resize).
        DMT_ASSERT(checkpoint->loop_mark <= t.loop_spawned.size(),
                   "loop_spawned shrank below a live checkpoint");
        t.loop_spawned.resize(checkpoint->loop_mark);
    } else {
        // Divergence repair: rebuild the writer table by scanning the
        // surviving entries.
        TraceBuffer::WriterSnapshot snap{};
        snap.has_writer.fill(0);
        for (u64 id = t.tb.firstId(); id < t.tb.endId(); ++id) {
            const TBEntry &e = t.tb.at(id);
            if (e.has_dest) {
                snap.last_writer[e.dest] = id;
                snap.has_writer[e.dest] = 1;
            }
        }
        t.tb.restoreWriters(snap);
        // Writers that already finally retired are gone from the table;
        // for a (head) thread with a retired prefix, registers without
        // a surviving writer must read the architectural values at the
        // current retirement point, not the thread-start inputs.
        if (t.retired_count > 0) {
            for (int ri = 0; ri < kNumLogRegs; ++ri) {
                IoInput &in = t.io.in[static_cast<size_t>(ri)];
                in.valid = true;
                in.value = retire_regs[static_cast<size_t>(ri)];
                in.watch = kNoPhysReg;
            }
        }
    }

    // Discard checkpoints of squashed branches.  This runs before any
    // trace-buffer id is reused, which is what keeps the checkpoint
    // ring's ids strictly increasing.
    t.checkpoints.eraseFrom(from_tb_id);

    // Clamp the recovery FSM: pending work beyond the truncation point
    // is gone (the refetched entries read corrected state directly).
    RecoveryFsm &fsm = t.recov;
    if (fsm.state == RecoveryFsm::State::Walk
        && fsm.walk_pos >= t.tb.endId()) {
        fsm.state = RecoveryFsm::State::Idle;
    }
    if (fsm.state == RecoveryFsm::State::Latency
        && fsm.cur.start_tb_id >= t.tb.endId()) {
        fsm.state = RecoveryFsm::State::Idle;
        fsm.latency_left = 0; // canonical idle state (audited)
    }
    if (fsm.has_pending) {
        RecoveryRequest &r = fsm.pending;
        std::erase_if(r.load_roots,
                      [&](u64 id) { return !t.tb.contains(id); });
        if ((r.reg_mask == 0 && r.load_roots.empty())
            || r.start_tb_id >= t.tb.endId()) {
            r.clear();
            fsm.has_pending = false;
        }
    }

    // Redirect fetch.
    t.pc = new_fetch_pc;
    t.stopped = false;
    t.fetched_halt = false;
}

void
DmtEngine::squashThread(ThreadContext &t)
{
    DMT_ASSERT(t.active, "squashing inactive thread");
    if (debug_trace)
        std::fprintf(stderr, "[%llu] squashThread tid=%d start=0x%x\n",
                     (unsigned long long)now_, t.id, t.start_pc);

    t.fq.clear();
    for (const DynRef &ref : t.pipe) {
        DynInst *d = pool.get(ref);
        if (d && !d->squashed)
            squashDyn(d);
        if (d)
            pool.release(d);
    }
    t.pipe.clear();

    const u64 discarded = t.tb.endId() - t.tb.firstId();
    for (u64 id = t.tb.endId(); id > t.tb.firstId(); --id)
        releaseEntryState(t, t.tb.at(id - 1), true);
    t.tb.truncateFrom(t.tb.firstId());

    spawn_pred.onThreadSquashed(t.start_pc);
    ++stats_.threads_squashed;
    emitTrace(TraceStage::Thread, TraceEventKind::ThreadSquash, t.id,
              t.start_pc, discarded);

    // Resume the predecessor if it had stopped at our start PC.
    const ThreadId pred = tree.predecessor(t.id);
    tree.remove(t.id);
    t.active = false;
    ++t.gen;
    // Per-register clear (not fill({})) keeps each list's capacity.
    for (auto &waiters : io_waiters[static_cast<size_t>(t.id)])
        waiters.clear();

    if (pred != kNoThread) {
        ThreadContext &p = ctx(pred);
        if (p.stopped && !p.fetched_halt)
            p.stopped = false; // re-evaluated against the new successor
    }
}

void
DmtEngine::squashThreadTree(ThreadId tid)
{
    if (!tree.contains(tid))
        return;
    // Member scratch is safe: a nested squashThreadTree (via
    // releaseEntryState on a victim's child-spawning entry) can only
    // target a thread already squashed in this sweep — descendants go
    // first — so it returns on the contains() check above before
    // touching the scratch vectors.
    std::vector<ThreadId> &victims = squash_victims_scratch_;
    tree.subtreeInto(tid, &victims, &squash_stack_scratch_);
    // Squash leaves first so tree.remove never splices live children.
    for (size_t i = victims.size(); i > 0; --i)
        squashThread(ctx(victims[i - 1]));
}

void
DmtEngine::checkRegConservation()
{
    DMT_ASSERT(prf.numFree() == prf.count(),
               "physical register leak: %d of %d free", prf.numFree(),
               prf.count());
}

} // namespace dmt
