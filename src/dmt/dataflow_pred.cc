#include "dmt/dataflow_pred.hh"

#include "common/bitutils.hh"
#include "common/log.hh"

namespace dmt
{

DataflowPredictor::DataflowPredictor(int entries)
{
    DMT_ASSERT(entries > 0 && isPowerOfTwo(static_cast<u64>(entries)),
               "table size must be a power of two");
    table.resize(static_cast<size_t>(entries));
}

size_t
DataflowPredictor::index(Addr pc) const
{
    return (pc >> 2) & (table.size() - 1);
}

const DfEntry *
DataflowPredictor::lookup(Addr start_pc) const
{
    const DfEntry &e = table[index(start_pc)];
    if (!e.valid || e.start_pc != start_pc)
        return nullptr;
    return &e;
}

void
DataflowPredictor::record(Addr start_pc, const std::vector<DfItem> &items)
{
    DfEntry &e = table[index(start_pc)];
    e.valid = true;
    e.start_pc = start_pc;
    e.n = 0;
    for (const DfItem &item : items) {
        if (e.n >= DfEntry::kMaxItems)
            break;
        e.items[e.n++] = item;
    }
}

void
DataflowPredictor::clear(Addr start_pc)
{
    DfEntry &e = table[index(start_pc)];
    if (e.valid && e.start_pc == start_pc)
        e.valid = false;
}

} // namespace dmt
