/**
 * @file
 * Recovery finite state machine state (paper Section 3.2.3).  One per
 * thread; the engine drives it.  A request names a walk start point in
 * the thread's trace buffer and either a set of corrected input
 * registers (register-root) or a mispredicted load (load-root).  The
 * walk reads blocks of tb_read_block entries per cycle after a
 * tb_latency startup delay, filters transitively dependent
 * instructions with a 32-entry dependency flag table, and re-dispatches
 * them through the recovery rename map.
 *
 * All queued work merges into one pending request (see enqueue), so
 * the "queue" is a single slot.  Request vectors are recycled
 * field-wise everywhere — the steady-state recovery path never
 * allocates once load_roots capacity has warmed up.
 */

#ifndef DMT_DMT_RECOVERY_HH
#define DMT_DMT_RECOVERY_HH

#include <algorithm>
#include <vector>

#include "common/types.hh"

namespace dmt
{

/** A pending recovery request (possibly merged from several events). */
struct RecoveryRequest
{
    /** First trace-buffer entry to examine. */
    u64 start_tb_id = 0;
    /** Corrected thread-input registers (register roots). */
    u32 reg_mask = 0;
    /** Mispredicted loads to re-issue (sorted trace-buffer ids). */
    std::vector<u64> load_roots;

    bool
    isLoadRoot(u64 id) const
    {
        return std::binary_search(load_roots.begin(), load_roots.end(),
                                  id);
    }

    /** Field-wise copy that reuses load_roots capacity. */
    void
    assignFrom(const RecoveryRequest &o)
    {
        start_tb_id = o.start_tb_id;
        reg_mask = o.reg_mask;
        load_roots.assign(o.load_roots.begin(), o.load_roots.end());
    }

    /** Back to the default state without freeing capacity. */
    void
    clear()
    {
        start_tb_id = 0;
        reg_mask = 0;
        load_roots.clear();
    }
};

/** Per-thread recovery engine state. */
class RecoveryFsm
{
  public:
    enum class State { Idle, Latency, Walk };

    State state = State::Idle;

    /** The single merged pending request (valid iff has_pending). */
    RecoveryRequest pending;
    bool has_pending = false;

    // Active-walk state.
    RecoveryRequest cur;
    u64 walk_pos = 0;
    u32 dep_flags = 0;
    int latency_left = 0;
    /** Next unvisited entry of cur.load_roots. */
    size_t next_root = 0;

    bool busy() const { return state != State::Idle || has_pending; }
    bool walking() const { return state != State::Idle; }

    /**
     * Oldest trace-buffer entry that could still be touched by pending
     * recovery work.  Entries below this id are final and may retire
     * even while a walk is running (re-dispatched entries above it are
     * held back by their completed flag anyway).
     */
    u64
    lowWater() const
    {
        u64 low = ~0ull;
        if (state == State::Walk)
            low = std::min(low, walk_pos);
        else if (state == State::Latency)
            low = std::min(low, cur.start_tb_id);
        if (has_pending)
            low = std::min(low, pending.start_tb_id);
        return low;
    }

    /**
     * Queue recovery work.  All pending work merges into a single
     * walk: union of corrected registers and mispredicted loads,
     * earliest start — one pass over the trace repairs everything
     * (equivalent to, but much faster than, sequential walks).
     */
    void
    enqueue(const RecoveryRequest &req)
    {
        if (!has_pending) {
            pending.assignFrom(req);
            std::sort(pending.load_roots.begin(),
                      pending.load_roots.end());
            has_pending = true;
            return;
        }
        pending.start_tb_id =
            std::min(pending.start_tb_id, req.start_tb_id);
        pending.reg_mask |= req.reg_mask;
        for (u64 id : req.load_roots) {
            auto it = std::lower_bound(pending.load_roots.begin(),
                                       pending.load_roots.end(), id);
            if (it == pending.load_roots.end() || *it != id)
                pending.load_roots.insert(it, id);
        }
    }

    void
    reset()
    {
        state = State::Idle;
        pending.clear();
        has_pending = false;
        cur.clear();
        walk_pos = 0;
        dep_flags = 0;
        latency_left = 0;
        next_root = 0;
    }
};

} // namespace dmt

#endif // DMT_DMT_RECOVERY_HH
