/**
 * @file
 * Fetch stage: multi-ported SMT fetch with the paper's bandwidth
 * partitioning (half to the non-speculative thread, half round-robin
 * across speculative threads), ICache-miss stalls that only block the
 * missing thread, per-thread stop-at-successor-start, and the
 * thread-misprediction detector.
 */

#include "dmt/engine.hh"

namespace dmt
{

Addr
DmtEngine::successorStartPc(const ThreadContext &t) const
{
    const ThreadId succ = tree.successor(t.id);
    if (succ == kNoThread)
        return 0;
    return ctx(succ).start_pc;
}

void
DmtEngine::fetchForThread(ThreadContext &t, int max_insts)
{
    const ThreadId succ = tree.successor(t.id);
    const Addr succ_start = succ == kNoThread ? 0 : ctx(succ).start_pc;

    for (int n = 0; n < max_insts; ++n) {
        // Join check: stop when control *reaches* the successor's start.
        // A thread whose own start PC equals its successor's (recursion:
        // the same static continuation at different depths) must first
        // make progress — it joins when control comes back around.
        const bool progressed =
            t.tb.totalAppended() != 0 || !t.fq.empty();
        if (succ != kNoThread && t.pc == succ_start && progressed) {
            // Reached the start of the next thread in the order list:
            // this thread's job is done (paper Section 2).
            t.stopped = true;
            emitTrace(TraceStage::Fetch, TraceEventKind::ThreadStop,
                      t.id, t.pc);
            if (debug_trace)
                std::fprintf(stderr, "[%llu] stop tid=%d at pc=0x%x "
                             "succ=%d\n", (unsigned long long)now_, t.id,
                             t.pc, succ);
            return;
        }

        // Frontend backpressure.
        if (static_cast<int>(t.fq.size()) >= cfg.fetch_block * 4)
            return;

        // ICache lookup; a miss stalls only this thread.
        const Cycle extra = hier.instAccess(t.pc);
        if (extra > 0) {
            emitTrace(TraceStage::Fetch, TraceEventKind::IcacheMiss,
                      t.id, t.pc, extra);
            t.fetch_ready = now_ + extra;
            if (cfg.isDmt()) {
                t.pending_imiss_episode =
                    imiss_eps.open(now_, now_ + extra);
            }
            return;
        }

        const Instruction &inst = prog.fetch(t.pc);

        FetchedInst fi;
        fi.inst = inst;
        fi.pc = t.pc;
        fi.fetch_cycle = now_;
        fi.ready_cycle = now_ + static_cast<Cycle>(cfg.frontend_depth);
        fi.imiss_episode = t.pending_imiss_episode;
        t.pending_imiss_episode = 0;

        emitTrace(TraceStage::Fetch, TraceEventKind::InstFetch, t.id,
                  t.pc);

        if (inst.isHalt()) {
            t.fq.push_back(fi);
            t.fetched_halt = true;
            return;
        }

        if (inst.isControl()) {
            fi.bstate_before = t.bstate;
            fi.has_bstate = true;
        }
        fi.pred = bpu.predict(inst, t.pc, t.bstate);
        // Fault injection: flip a conditional-branch prediction.  The
        // thread fetches down the wrong path until the branch executes;
        // the ordinary checkpoint-restore misprediction machinery (a
        // checkpoint exists for every conditional branch) repairs it.
        if (inst.isCondBranch()
            && injector_.shouldInject(FaultSite::BranchPrediction)) {
            fi.pred.taken = !fi.pred.taken;
            fi.pred.target = fi.pred.taken ? inst.branchTarget(t.pc)
                                           : t.pc + 4;
        }
        t.fq.push_back(fi);

        if (fi.pred.taken) {
            t.pc = fi.pred.target;
            return; // fetch block ends at a taken control transfer
        }
        t.pc += 4;
    }
}

void
DmtEngine::doFetch()
{
    const auto &order = tree.order();
    if (order.empty())
        return;

    const ThreadId head = order.front();

    // Collect fetch-capable speculative threads in order.
    std::vector<ThreadId> &specs = fetch_spec_scratch_;
    specs.clear();
    for (size_t i = 1; i < order.size(); ++i) {
        if (ctx(order[i]).canFetch(now_, cfg.recovery_fetch_stall))
            specs.push_back(order[i]);
    }
    const bool head_ok = ctx(head).canFetch(now_,
                                            cfg.recovery_fetch_stall);

    // Bandwidth split (paper Section 4.1): half the ports to the
    // non-speculative thread, the rest round-robin over speculative
    // threads.  A single port alternates by cycle parity.  Ports with
    // no eligible thread in their class fall back to the other class.
    int head_ports;
    if (cfg.fetch_ports == 1) {
        head_ports = (now_ & 1) == 0 ? 1 : 0;
    } else {
        head_ports = cfg.fetch_ports / 2;
    }

    size_t spec_cursor = static_cast<size_t>(fetch_rr);
    bool head_fetched = false;
    for (int port = 0; port < cfg.fetch_ports; ++port) {
        const bool wants_head = port < head_ports;
        ThreadId pick = kNoThread;
        if (wants_head && head_ok && !head_fetched) {
            pick = head;
        } else if (!specs.empty()) {
            pick = specs[spec_cursor % specs.size()];
            ++spec_cursor;
        } else if (head_ok && !head_fetched) {
            pick = head;
        }
        if (pick == kNoThread)
            continue;
        if (pick == head)
            head_fetched = true;
        fetchForThread(ctx(pick), cfg.fetch_block);
    }
    fetch_rr = static_cast<int>(spec_cursor);
}

void
DmtEngine::checkThreadMispredictions()
{
    // Forward-progress rule: if the head thread has appended a full
    // trace buffer of instructions since its current successor became
    // adjacent, it will never join it — the successor was mispredicted
    // (e.g. spawned at an unexpected loop exit).  Squash it and its
    // subtree (paper Section 3.1.2's cleanup, made deterministic).
    const ThreadId head = tree.head();
    if (head == kNoThread)
        return;
    ThreadContext &t = ctx(head);
    const ThreadId succ = tree.successor(head);
    if (succ == kNoThread) {
        t.successor_watch_armed = false;
        return;
    }
    // Fingerprint of the watched successor: re-arm the detector
    // whenever the successor identity changes.
    const u32 key = static_cast<u32>(succ) ^ (ctx(succ).gen << 8);
    if (!t.successor_watch_armed || t.watched_succ_key != key) {
        t.successor_watch_armed = true;
        t.watched_succ_key = key;
        t.successor_watch_base = t.tb.totalAppended();
        return;
    }
    if (t.stopped)
        return; // joined (or halted); detector idle
    if (t.tb.totalAppended() - t.successor_watch_base
        > static_cast<u64>(cfg.tb_size) * 2) {
        squashThreadTree(succ);
        t.successor_watch_armed = false;
    }
}

} // namespace dmt
