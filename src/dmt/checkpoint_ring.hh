/**
 * @file
 * Branch-checkpoint storage indexed by trace-buffer id.  Checkpoints
 * were a std::map<u64, BranchCheckpoint>, which costs a node
 * allocation per mispredictable branch — one of the hottest allocation
 * sites in the engine.  Three properties make a flat ring exact:
 *
 *  - ids are created strictly increasing (dispatch order), and an
 *    intra-thread squash erases every checkpoint >= the squash point
 *    before any trace-buffer id is reused, so the ring stays sorted;
 *  - erasure happens only at the ends (retirement from the front,
 *    squash from the back) or by tombstoning a resolved branch in the
 *    middle;
 *  - lookup is by exact id, served by binary search over the sorted
 *    ring (live and tombstoned slots alike keep their ids).
 *
 * Slots are recycled, so once the ring has grown to the thread's
 * checkpoint high-water mark no further allocation happens.  The
 * payload type must be flat (assignment must not allocate).
 */

#ifndef DMT_DMT_CHECKPOINT_RING_HH
#define DMT_DMT_CHECKPOINT_RING_HH

#include <cstddef>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace dmt
{

template <typename T>
class CheckpointRing
{
  public:
    /** Live checkpoints (tombstones excluded). */
    size_t size() const { return live_; }
    bool empty() const { return live_ == 0; }

    /**
     * Insert a checkpoint for @p id and return its payload slot for
     * the caller to fill.  @p id must exceed every id in the ring.
     */
    T &
    emplace(u64 id)
    {
        DMT_ASSERT(count_ == 0 || id > slot(count_ - 1).id,
                   "checkpoint ids must be inserted in order");
        if (count_ == ring_.size())
            grow();
        Slot &s = slot(count_);
        s.id = id;
        s.live = true;
        ++count_;
        ++live_;
        return s.payload;
    }

    /** Payload for @p id, or nullptr if absent / already erased. */
    T *
    find(u64 id)
    {
        const size_t i = lowerBound(id);
        if (i == count_ || slot(i).id != id || !slot(i).live)
            return nullptr;
        return &slot(i).payload;
    }

    /** Erase @p id if present (absent is fine, matching map::erase). */
    void
    erase(u64 id)
    {
        const size_t i = lowerBound(id);
        if (i == count_ || slot(i).id != id || !slot(i).live)
            return;
        slot(i).live = false;
        --live_;
        trimEnds();
    }

    /** Erase every checkpoint with id >= @p from_id (branch squash). */
    void
    eraseFrom(u64 from_id)
    {
        while (count_ > 0 && slot(count_ - 1).id >= from_id) {
            if (slot(count_ - 1).live)
                --live_;
            --count_;
        }
        trimEnds();
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
        live_ = 0;
    }

  private:
    struct Slot
    {
        u64 id = 0;
        bool live = false;
        T payload;
    };

    Slot &
    slot(size_t i)
    {
        return ring_[(head_ + i) & (ring_.size() - 1)];
    }
    const Slot &
    slot(size_t i) const
    {
        return ring_[(head_ + i) & (ring_.size() - 1)];
    }

    /** First position whose id is >= @p id (ids are sorted). */
    size_t
    lowerBound(u64 id) const
    {
        size_t lo = 0, hi = count_;
        while (lo < hi) {
            const size_t mid = lo + (hi - lo) / 2;
            if (slot(mid).id < id)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    /** Pop tombstones off both ends so lookups stay tight. */
    void
    trimEnds()
    {
        while (count_ > 0 && !slot(count_ - 1).live)
            --count_;
        while (count_ > 0 && !slot(0).live) {
            head_ = (head_ + 1) & (ring_.size() - 1);
            --count_;
        }
    }

    void
    grow()
    {
        const size_t cap = ring_.empty() ? 8 : ring_.size() * 2;
        std::vector<Slot> bigger(cap);
        for (size_t i = 0; i < count_; ++i)
            bigger[i] = std::move(slot(i));
        ring_ = std::move(bigger);
        head_ = 0;
    }

    std::vector<Slot> ring_;
    size_t head_ = 0;
    size_t count_ = 0; ///< occupied slots, tombstones included
    size_t live_ = 0;
};

} // namespace dmt

#endif // DMT_DMT_CHECKPOINT_RING_HH
