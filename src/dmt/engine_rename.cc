/**
 * @file
 * Dispatch/rename stage: moves instructions from the per-thread fetch
 * queues into the trace buffer (level-2 window) and the execution
 * pipeline (level-1 window), performing trace-buffer renaming, physical
 * register allocation, LSQ allocation, branch checkpointing, thread
 * spawning, and dataflow-prediction watch matching.
 */

#include "dmt/engine.hh"

namespace dmt
{

void
DmtEngine::subscribePhys(PhysReg p, DynInst *d, int op)
{
    DMT_ASSERT(p != kNoPhysReg, "subscribe to no register");
    d->src_ready[op] = false;
    ++d->n_src_pending;
    psubs[static_cast<size_t>(p)].waiters.push_back(
        {d->self, static_cast<u8>(op)});
}

void
DmtEngine::resolveOperand(ThreadContext &t, const TBEntry &entry, int i,
                          DynInst *d)
{
    const SrcRef &ref = entry.src[i];
    switch (ref.kind) {
      case SrcRef::None:
        d->src_val[i] = 0;
        d->src_ready[i] = true;
        break;
      case SrcRef::ThreadInput: {
          IoInput &in = t.io.in[ref.reg];
          if (!in.used || entry.id < in.first_use_id)
              in.first_use_id = entry.id;
          in.used = true;
          if (in.valid) {
              d->src_val[i] = in.value;
              d->src_ready[i] = true;
              in.used_value = in.value;
          } else {
              d->src_ready[i] = false;
              ++d->n_src_pending;
              io_waiters[static_cast<size_t>(t.id)][ref.reg].push_back(
                  {d->self, static_cast<u8>(i)});
          }
          break;
      }
      case SrcRef::TbEntry: {
          if (!t.tb.contains(ref.tb_id)) {
              // Producer finally retired (head thread only): the value
              // is architectural.
              d->src_val[i] = retire_regs[ref.reg];
              d->src_ready[i] = true;
              break;
          }
          const TBEntry &p = t.tb.at(ref.tb_id);
          if (p.result_valid) {
              d->src_val[i] = p.result;
              d->src_ready[i] = true;
          } else {
              DMT_ASSERT(p.cur_phys != kNoPhysReg,
                         "producer entry without destination register");
              if (prf.ready(p.cur_phys)) {
                  d->src_val[i] = prf.value(p.cur_phys);
                  d->src_ready[i] = true;
              } else {
                  subscribePhys(p.cur_phys, d, i);
              }
          }
          break;
      }
    }
}

void
DmtEngine::armDataflowWatches(ThreadContext &t)
{
    t.df_watch.clear();
    if (!cfg.dataflow_prediction)
        return;
    const DfEntry *e = df_pred.lookup(t.start_pc);
    if (!e)
        return;
    for (int i = 0; i < e->n; ++i)
        t.df_watch.push_back({e->items[i].reg, e->items[i].modpc_lo});
}

void
DmtEngine::matchDataflowWatches(ThreadContext &producer, DynInst *d,
                                const TBEntry &entry)
{
    if (!cfg.dataflow_prediction || !entry.has_dest)
        return;
    const ThreadId succ = tree.successor(producer.id);
    if (succ == kNoThread)
        return;
    ThreadContext &s = ctx(succ);
    for (const DfWatch &w : s.df_watch) {
        if (w.reg == entry.dest
            && static_cast<u16>(entry.pc) == w.modpc_lo) {
            d->df_targets.push_back({s.id, s.gen, w.reg});
            ++stats_.df_matches;
        }
    }
}

ThreadId
DmtEngine::allocateContext(ThreadContext &parent)
{
    for (int i = 0; i < cfg.max_threads; ++i) {
        if (!threads[static_cast<size_t>(i)]->active)
            return i;
    }
    // Pre-emptive allocation (paper Section 3.1.2): the new thread —
    // which would sit immediately after its spawner — evicts the lowest
    // thread in the order list, unless the spawner *is* the lowest.
    const ThreadId lowest = tree.last();
    if (lowest == parent.id)
        return kNoThread;
    if (now_ - ctx(lowest).spawn_cycle
        < static_cast<Cycle>(cfg.preempt_min_age)) {
        return kNoThread; // damp preemption thrash
    }
    DMT_ASSERT(tree.leaf(lowest), "order-list tail has children");
    squashThread(ctx(lowest));
    return lowest;
}

void
DmtEngine::spawnThread(ThreadContext &parent, TBEntry &entry,
                       Addr start_pc, bool is_loop,
                       const ThreadBranchState &spawn_bstate)
{
    const ThreadId child_id = allocateContext(parent);
    if (child_id == kNoThread)
        return;

    ThreadContext &c = ctx(child_id);
    c.resetFor(child_id, cfg.tb_size);
    c.start_pc = c.pc = start_pc;
    c.spawn_point_pc = entry.pc;
    c.is_loop_thread = is_loop;
    c.spawn_cycle = now_;
    c.was_spawned = true;

    // Sequencing state: cleared history, RAS copied from the spawner at
    // the spawn point (paper Section 3.1.4).  For an after-call thread
    // the pre-call RAS is exactly the stack the post-return code sees.
    c.bstate.history = 0;
    c.bstate.ras = spawn_bstate.ras;

    // Value-predicted inputs: the parent's register context at the
    // spawn point (paper Section 3.2.2).
    for (int ri = 0; ri < kNumLogRegs; ++ri) {
        const LogReg r = static_cast<LogReg>(ri);
        IoInput &in = c.io.in[r];
        in = IoInput{};
        if (!cfg.value_prediction) {
            if (r == 0) {
                in.valid = true;
                in.value = 0;
                in.valid_at_spawn = true;
            }
            continue;
        }
        u64 wid;
        if (parent.tb.lastWriter(r, &wid)) {
            if (!parent.tb.contains(wid)) {
                in.valid = true;
                in.value = retire_regs[r];
            } else {
                const TBEntry &pe = parent.tb.at(wid);
                if (pe.result_valid) {
                    in.valid = true;
                    in.value = pe.result;
                } else if (prf.ready(pe.cur_phys)) {
                    in.valid = true;
                    in.value = prf.value(pe.cur_phys);
                } else {
                    in.watch = pe.cur_phys;
                    psubs[static_cast<size_t>(pe.cur_phys)]
                        .io_subs.push_back({c.id, c.gen, r});
                }
            }
        } else {
            const IoInput &pin = parent.io.in[r];
            if (pin.valid) {
                in.valid = true;
                in.value = pin.value;
            } else if (pin.watch != kNoPhysReg) {
                in.watch = pin.watch;
                psubs[static_cast<size_t>(pin.watch)].io_subs.push_back(
                    {c.id, c.gen, r});
            }
        }
        // Fault injection: corrupt a value-predicted input at spawn.
        // Speculative-only state — the head-switch final check compares
        // every input against the architectural registers and files a
        // recovery walk for any mismatch, so retirement stays golden.
        // r0 is skipped: it is architecturally hardwired and exempt
        // from final validation.
        if (in.valid && r != 0
            && injector_.shouldInject(FaultSite::SpawnInput)) {
            in.value =
                injector_.corruptValue(FaultSite::SpawnInput, in.value);
        }
        in.valid_at_spawn = in.valid;
    }

    armDataflowWatches(c);
    // Inputs with an armed last-modifier watch are known-stale: rather
    // than execute with a value history says will change, let their
    // consumers wait for the modifier's writeback (dataflow_sync).
    if (cfg.dataflow_sync) {
        for (const DfWatch &w : c.df_watch) {
            IoInput &in = c.io.in[w.reg];
            in.valid = false;
            in.value = 0;
            in.watch = kNoPhysReg;
            in.valid_at_spawn = false;
        }
    }

    if (debug_trace)
        std::fprintf(stderr, "[%llu] spawn tid=%d start=0x%x parent=%d "
                     "at pc=0x%x loop=%d\n", (unsigned long long)now_,
                     child_id, start_pc, parent.id, entry.pc, is_loop);
    tree.addChild(parent.id, child_id);
    entry.child_tid = child_id;
    entry.child_gen = c.gen;
    if (is_loop)
        parent.loopSpawnedInsert(entry.pc);

    ++stats_.threads_spawned;
    emitTrace(TraceStage::Thread, TraceEventKind::ThreadSpawn, child_id,
              start_pc, static_cast<u64>(static_cast<i64>(parent.id)),
              is_loop ? 1 : 0);
}

void
DmtEngine::trySpawn(ThreadContext &parent, TBEntry &entry,
                    const ThreadBranchState &spawn_bstate)
{
    const Instruction &inst = entry.inst;
    const bool is_loop = inst.isBackwardBranch(entry.pc);

    // A stopped thread has already named its successor; anything it
    // spawned now would sit past its join point — always mispredicted.
    if (parent.stopped || parent.fetched_halt)
        return;

    Addr start;
    if (is_loop) {
        if (!cfg.spawn_on_loop)
            return;
        // An inner-loop thread spawns its fall-through thread at most
        // once (paper Section 3.1).
        if (parent.loopSpawnedContains(entry.pc))
            return;
        start = spawn_pred.predictAfterLoop(entry.pc);
    } else {
        if (!cfg.spawn_on_call)
            return;
        start = entry.pc + 4; // return address
    }

    if (!prog.validTextAddr(start))
        return;
    if (cfg.max_same_start > 0) {
        int same = 0;
        for (ThreadId tid : tree.order()) {
            if (ctx(tid).start_pc == start)
                ++same;
        }
        if (same >= cfg.max_same_start)
            return;
    }
    bool selected = spawn_pred.selected(start);
    // Fault injection: flip the thread-selection decision.  A spurious
    // spawn is cleaned up by join validation / the thread-misprediction
    // detector; a suppressed spawn only costs performance.
    if (injector_.shouldInject(FaultSite::SpawnDecision))
        selected = !selected;
    if (!selected) {
        ++stats_.spawns_suppressed;
        return;
    }
    // Don't spawn a thread the parent's frontend has already reached —
    // it would join immediately (tiny procedures).
    if (parent.pc == start)
        return;
    for (const FetchedInst &fi : parent.fq) {
        if (fi.pc == start)
            return;
    }

    spawnThread(parent, entry, start, is_loop, spawn_bstate);
}

bool
DmtEngine::dispatchOne(ThreadContext &t, const FetchedInst &fi)
{
    const Instruction &inst = fi.inst;

    // Speculative threads may not take the last window slots: the head
    // must always be able to dispatch (and run recovery), otherwise
    // stalled speculative consumers could wedge the whole machine.
    const int limit = isHead(t)
        ? cfg.window_size
        : cfg.window_size - 2 * cfg.fetch_block;
    if (window_used >= limit)
        return false;
    if (t.tb.full())
        return false;
    if (inst.isLoad() && lsq.lqFull(t.id))
        return false;
    if (inst.isStore() && lsq.sqFull(t.id))
        return false;

    TBEntry proto;
    proto.inst = inst;
    proto.pc = fi.pc;
    proto.predicted_taken = fi.pred.taken;
    proto.predicted_target = fi.pred.target;
    proto.history_used = fi.pred.history_used;
    proto.trace_next_pc = inst.isControl() && fi.pred.taken
        ? fi.pred.target : fi.pc + 4;
    proto.fetch_cycle = fi.fetch_cycle;
    proto.imiss_episode = fi.imiss_episode;

    const u64 id = t.tb.append(proto);
    TBEntry &entry = t.tb.at(id);

    if (inst.isLoad()) {
        entry.lq_id = lsq.allocLoad(t.id, t.gen, id);
        DMT_ASSERT(entry.lq_id >= 0, "load queue overflow after check");
    }
    if (inst.isStore()) {
        entry.sq_id = lsq.allocStore(t.id, t.gen, id);
        DMT_ASSERT(entry.sq_id >= 0, "store queue overflow after check");
    }

    // Checkpoint mispredictable control transfers for exact repair.
    // Fill the ring slot in place: every field is flat, so this never
    // allocates (the loop-spawned set is checkpointed as a mark, not a
    // copy — see BranchCheckpoint).
    if (inst.isCondBranch() || inst.isIndirect()) {
        BranchCheckpoint &cp = t.checkpoints.emplace(id);
        cp.writers = t.tb.writerSnapshot();
        cp.bstate = fi.has_bstate ? fi.bstate_before : t.bstate;
        cp.loop_mark = t.loop_spawned.size();
    }

    DynInst *d = pool.alloc();
    d->seq = next_seq++;
    d->tid = t.id;
    d->tgen = t.gen;
    d->tb_id = id;
    d->uid = entry.uid;
    d->inst = inst;
    d->pc = fi.pc;
    d->fetch_cycle = fi.fetch_cycle;
    d->dispatch_cycle = now_;

    if (entry.has_dest) {
        const PhysReg p = allocPhys();
        d->dest_phys = p;
        entry.cur_phys = p;
    }

    resolveOperand(t, entry, 0, d);
    resolveOperand(t, entry, 1, d);

    ++window_used;
    ++stats_.dispatched;
    emitTrace(TraceStage::Rename, TraceEventKind::InstDispatch, t.id,
              d->pc, entry.id);
    ++entry.dispatch_count;
    t.pipe.push_back(d->self);

    if (d->n_src_pending == 0)
        makeReady(d);

    matchDataflowWatches(t, d, entry);

    if (cfg.isDmt()
        && (inst.isCall() || inst.isBackwardBranch(fi.pc))) {
        trySpawn(t, entry,
                 fi.has_bstate ? fi.bstate_before : t.bstate);
    }
    return true;
}

void
DmtEngine::doDispatch()
{
    // Copy into a member scratch (capacity reused): dispatchOne may
    // spawn, which invalidates the tree's cached order mid-iteration.
    dispatch_order_scratch_.assign(tree.order().begin(),
                                   tree.order().end());
    const std::vector<ThreadId> &order = dispatch_order_scratch_;
    int budget = cfg.fetch_ports * cfg.fetch_block;

    for (ThreadId tid : order) {
        if (budget <= 0)
            break;
        ThreadContext &t = ctx(tid);
        // The trace-buffer instruction queue is single ported (paper
        // Section 4.4): while the recovery FSM is reading it, normal
        // dispatch (which writes it) waits.
        if (!t.active)
            continue;
        if (cfg.recovery_dispatch_stall >= 2 && t.recov.busy())
            continue;
        if (cfg.recovery_dispatch_stall == 1 && t.recov.walking())
            continue;
        while (budget > 0 && !t.fq.empty()
               && t.fq.front().ready_cycle <= now_) {
            if (!dispatchOne(t, t.fq.front()))
                break; // structural stall
            t.fq.pop_front();
            --budget;
        }
    }
}

} // namespace dmt
