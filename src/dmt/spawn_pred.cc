#include "dmt/spawn_pred.hh"

#include "common/bitutils.hh"
#include "common/log.hh"

namespace dmt
{

SpawnPredictor::SpawnPredictor(int table_bits_, int max_contexts_,
                               int min_thread_size_)
    : table_bits(table_bits_), max_contexts(max_contexts_),
      min_thread_size(min_thread_size_)
{
    DMT_ASSERT(table_bits > 0 && table_bits <= 20, "bad spawn table");
    mask = (1u << table_bits) - 1;
    // Start weakly selected so cold threads get a chance to train.
    counters.assign(1u << table_bits, 2);
    loop_exits.resize(kLoopExitEntries);
}

u32
SpawnPredictor::index(Addr pc) const
{
    return (pc >> 2) & mask;
}

bool
SpawnPredictor::selected(Addr start_pc) const
{
    return counters[index(start_pc)] >= 2;
}

int
SpawnPredictor::counterOf(Addr start_pc) const
{
    return counters[index(start_pc)];
}

void
SpawnPredictor::bump(Addr start_pc, bool up)
{
    u8 &c = counters[index(start_pc)];
    if (up) {
        if (c < 3)
            ++c;
    } else if (c > 0) {
        --c;
    }
}

void
SpawnPredictor::onThreadRetired(Addr start_pc, bool useful,
                                bool too_small)
{
    if (too_small || !useful) {
        // Paper: the counter is reset for a thread that is too small or
        // does not sufficiently overlap other threads.
        counters[index(start_pc)] = 0;
    } else {
        bump(start_pc, true);
    }
}

void
SpawnPredictor::onThreadSquashed(Addr start_pc)
{
    bump(start_pc, false);
}

void
SpawnPredictor::onRetireSpawnPoint(Addr join_pc)
{
    ++spawn_seq;
    // Don't flood the stack with one entry per loop iteration.
    for (const auto &e : stack) {
        if (e.join_pc == join_pc)
            return;
    }
    // ORDER MATTERS: the stack is FIFO-evicted here and LIFO-popped in
    // onRetirePc, so a swap-and-pop would change which join candidates
    // survive.  kStackDepth is small; the ordered erase is cheap.
    if (static_cast<int>(stack.size()) >= kStackDepth)
        stack.erase(stack.begin()); // drop the oldest
    stack.push_back({join_pc, spawn_seq, retired_seq});
}

void
SpawnPredictor::onRetirePc(Addr pc)
{
    ++retired_seq;
    while (!stack.empty() && stack.back().join_pc == pc) {
        const u64 distance = spawn_seq - stack.back().spawn_seq;
        const u64 size = retired_seq - stack.back().retired_seq;
        stack.pop_back();
        // The would-be thread joins: good if it would have been close
        // enough to keep a context *and* big enough to pay for itself.
        bump(pc, distance < static_cast<u64>(max_contexts)
                 && size >= static_cast<u64>(min_thread_size));
    }
}

void
SpawnPredictor::recordLoopExit(Addr branch_pc, Addr exit_pc)
{
    LoopExitEntry &e =
        loop_exits[(branch_pc >> 2) & (kLoopExitEntries - 1)];
    e.valid = true;
    e.branch_pc = branch_pc;
    e.exit_pc = exit_pc;
}

Addr
SpawnPredictor::predictAfterLoop(Addr branch_pc) const
{
    const LoopExitEntry &e =
        loop_exits[(branch_pc >> 2) & (kLoopExitEntries - 1)];
    if (e.valid && e.branch_pc == branch_pc)
        return e.exit_pc;
    return branch_pc + 4;
}

} // namespace dmt
