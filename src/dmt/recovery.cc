#include "dmt/recovery.hh"

// RecoveryFsm is fully inline; the walk logic lives in
// dmt/engine_execute.cc where it has access to the pipeline.
