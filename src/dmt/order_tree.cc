#include "dmt/order_tree.hh"

#include <algorithm>

#include "common/log.hh"

namespace dmt
{

OrderTree::OrderTree(int max_threads_)
    : max_threads(max_threads_)
{
    active.assign(static_cast<size_t>(max_threads), 0);
    parent.assign(static_cast<size_t>(max_threads), kNoThread);
    kids.assign(static_cast<size_t>(max_threads), {});
    pos.assign(static_cast<size_t>(max_threads), -1);
}

size_t
OrderTree::idx(ThreadId tid) const
{
    DMT_ASSERT(tid >= 0 && tid < max_threads, "bad thread id %d", tid);
    return static_cast<size_t>(tid);
}

void
OrderTree::resetWith(ThreadId tid)
{
    std::fill(active.begin(), active.end(), 0);
    std::fill(parent.begin(), parent.end(), kNoThread);
    for (auto &k : kids)
        k.clear();
    top.clear();
    active[idx(tid)] = 1;
    top.push_back(tid);
    invalidate();
}

void
OrderTree::addChild(ThreadId p, ThreadId child)
{
    DMT_ASSERT(active[idx(p)], "parent %d not active", p);
    DMT_ASSERT(!active[idx(child)], "child %d already active", child);
    active[idx(child)] = 1;
    parent[idx(child)] = p;
    kids[idx(p)].insert(kids[idx(p)].begin(), child);
    invalidate();
}

void
OrderTree::remove(ThreadId tid)
{
    DMT_ASSERT(active[idx(tid)], "removing inactive thread %d", tid);

    auto &children = kids[idx(tid)];
    const ThreadId p = parent[idx(tid)];
    auto &siblings = p == kNoThread ? top : kids[idx(p)];
    auto it = std::find(siblings.begin(), siblings.end(), tid);
    DMT_ASSERT(it != siblings.end(), "tree corruption");
    // Splice children into the removed node's position, preserving
    // their relative (most-recent-first) order.
    it = siblings.erase(it);
    siblings.insert(it, children.begin(), children.end());
    for (ThreadId c : children)
        parent[idx(c)] = p;
    children.clear();

    active[idx(tid)] = 0;
    parent[idx(tid)] = kNoThread;
    invalidate();
}

void
OrderTree::walk(ThreadId tid) const
{
    pos[idx(tid)] = static_cast<int>(order_.size());
    order_.push_back(tid);
    for (ThreadId c : kids[idx(tid)])
        walk(c);
}

void
OrderTree::rebuild() const
{
    order_.clear();
    std::fill(pos.begin(), pos.end(), -1);
    for (ThreadId t : top)
        walk(t);
    cache_valid = true;
}

const std::vector<ThreadId> &
OrderTree::order() const
{
    if (!cache_valid)
        rebuild();
    return order_;
}

ThreadId
OrderTree::head() const
{
    const auto &o = order();
    return o.empty() ? kNoThread : o.front();
}

ThreadId
OrderTree::last() const
{
    const auto &o = order();
    return o.empty() ? kNoThread : o.back();
}

ThreadId
OrderTree::successor(ThreadId tid) const
{
    const auto &o = order();
    const int p = pos[idx(tid)];
    DMT_ASSERT(p >= 0, "successor of inactive thread %d", tid);
    return p + 1 < static_cast<int>(o.size())
        ? o[static_cast<size_t>(p) + 1] : kNoThread;
}

ThreadId
OrderTree::predecessor(ThreadId tid) const
{
    order();
    const int p = pos[idx(tid)];
    DMT_ASSERT(p >= 0, "predecessor of inactive thread %d", tid);
    return p > 0 ? order_[static_cast<size_t>(p) - 1] : kNoThread;
}

bool
OrderTree::before(ThreadId a, ThreadId b) const
{
    order();
    const int pa = pos[idx(a)];
    const int pb = pos[idx(b)];
    DMT_ASSERT(pa >= 0 && pb >= 0, "ordering inactive threads");
    return pa < pb;
}

std::vector<ThreadId>
OrderTree::subtree(ThreadId tid) const
{
    std::vector<ThreadId> result;
    std::vector<ThreadId> stack;
    subtreeInto(tid, &result, &stack);
    return result;
}

void
OrderTree::subtreeInto(ThreadId tid, std::vector<ThreadId> *out,
                       std::vector<ThreadId> *scratch) const
{
    DMT_ASSERT(active[idx(tid)], "subtree of inactive thread %d", tid);
    std::vector<ThreadId> &result = *out;
    std::vector<ThreadId> &stack = *scratch;
    result.clear();
    stack.clear();
    stack.push_back(tid);
    while (!stack.empty()) {
        const ThreadId t = stack.back();
        stack.pop_back();
        result.push_back(t);
        for (ThreadId c : kids[idx(t)])
            stack.push_back(c);
    }
}

int
OrderTree::size() const
{
    return static_cast<int>(order().size());
}

bool
OrderTree::audit(std::string *why) const
{
    auto fail = [why](std::string msg) {
        if (why)
            *why = std::move(msg);
        return false;
    };
    auto inRange = [this](ThreadId t) {
        return t >= 0 && t < max_threads;
    };

    int n_active = 0;
    for (u8 a : active)
        n_active += a ? 1 : 0;

    std::vector<u8> visited(static_cast<size_t>(max_threads), 0);
    std::vector<ThreadId> stack;
    for (ThreadId t : top) {
        if (!inRange(t))
            return fail("top list holds out-of-range tid "
                        + std::to_string(t));
        if (parent[static_cast<size_t>(t)] != kNoThread)
            return fail("top-level tid " + std::to_string(t)
                        + " has a parent");
        stack.push_back(t);
    }
    int reached = 0;
    while (!stack.empty()) {
        const ThreadId t = stack.back();
        stack.pop_back();
        const size_t i = static_cast<size_t>(t);
        if (!active[i])
            return fail("inactive tid " + std::to_string(t)
                        + " linked into the tree");
        if (visited[i])
            return fail("tid " + std::to_string(t)
                        + " reachable twice (cycle or duplicate link)");
        visited[i] = 1;
        ++reached;
        for (ThreadId c : kids[i]) {
            if (!inRange(c))
                return fail("kids of " + std::to_string(t)
                            + " hold out-of-range tid "
                            + std::to_string(c));
            if (parent[static_cast<size_t>(c)] != t)
                return fail("child " + std::to_string(c)
                            + " does not point back at parent "
                            + std::to_string(t));
            stack.push_back(c);
        }
    }
    if (reached != n_active)
        return fail("tree reaches " + std::to_string(reached)
                    + " nodes but " + std::to_string(n_active)
                    + " are active (orphaned thread)");
    return true;
}

} // namespace dmt
