/**
 * @file
 * Statistics gathered by the DMT engine — everything needed to
 * regenerate the paper's Figures 4-13.
 */

#ifndef DMT_DMT_STATS_HH
#define DMT_DMT_STATS_HH

#include <string>

#include "common/stats.hh"

namespace dmt
{

/** Full engine statistics block. */
struct DmtStats
{
    // ---- progress -------------------------------------------------------
    Counter cycles;
    Counter retired;          ///< finally retired instructions
    Counter early_retired;
    Counter dispatched;
    Counter issued;
    Counter squashed_insts;   ///< dispatched instructions squashed

    // ---- threads --------------------------------------------------------
    Counter threads_spawned;
    Counter threads_squashed;
    Counter threads_joined;   ///< retired after a successful join
    Counter spawns_suppressed; ///< selection counter said no
    Average thread_size;      ///< retired instructions per joined thread
    Average thread_overlap;   ///< fraction executed while speculative
    Average active_threads;   ///< sampled per cycle
    /** Distribution of retired instructions per thread (all threads,
     *  including the initial one and unjoined ones). */
    Histogram thread_size_hist{0.0, 512.0, 16};

    // ---- branches ----------------------------------------------------------
    Counter cond_branches;    ///< resolved conditional branches
    Counter cond_mispredicts;
    Counter indirect_jumps;
    Counter indirect_mispredicts;
    Counter late_divergences; ///< recovery-time branch direction flips

    // ---- memory -------------------------------------------------------------
    Counter loads_issued;
    Counter stores_issued;
    Counter fwd_same_thread;
    Counter fwd_cross_thread;
    Counter load_stalls_partial;
    Counter lsq_violations;

    // ---- data speculation ------------------------------------------------
    Counter recoveries;            ///< recovery walks performed
    Counter recovery_dispatches;   ///< instructions re-dispatched
    /** Distribution of trace-buffer entries read per recovery walk. */
    Histogram recovery_walk_hist{0.0, 256.0, 16};
    Counter df_corrections;        ///< dataflow-predicted input updates
    Counter df_matches;            ///< last-modifier watch matches
    Counter df_deliveries;         ///< values delivered via dataflow
    Counter inputs_used;           ///< live thread inputs (Figure 11)
    Counter inputs_valid_at_spawn;
    Counter inputs_same_later;
    Counter inputs_df_correct;
    Counter inputs_hit;            ///< correct without final-check recovery

    // ---- lookahead (Figures 8 and 9) -------------------------------------
    Counter la_fetch_beyond_mispredict;
    Counter la_exec_beyond_mispredict;
    Counter la_fetch_beyond_imiss;
    Counter la_exec_beyond_imiss;

    // ---- retirement stall attribution (cycles the head retired 0) ------
    Counter st_headswitch;   ///< waiting on input validation / drain
    Counter st_recovery;     ///< head recovery walk outstanding
    Counter st_incomplete;   ///< oldest entry not yet executed
    Counter st_empty;        ///< trace buffer empty (fetch behind)

    // ---- caches (copied from the hierarchy at run end) ---------------------
    Counter icache_misses;
    Counter icache_accesses;
    Counter dcache_misses;
    Counter dcache_accesses;

    double
    ipc() const
    {
        return cycles.value() == 0
            ? 0.0
            : static_cast<double>(retired.value())
                  / static_cast<double>(cycles.value());
    }

    double
    condMispredictRate() const
    {
        return cond_branches.value() == 0
            ? 0.0
            : static_cast<double>(cond_mispredicts.value())
                  / static_cast<double>(cond_branches.value());
    }

    /** Register everything on a StatGroup for text dumps. */
    void registerAll(StatGroup &group) const;

    /** Accumulate another stat block (interval-sampled aggregation):
     *  counters and histograms add, averages pool their samples. */
    void merge(const DmtStats &other);
};

} // namespace dmt

#endif // DMT_DMT_STATS_HH
