/**
 * @file
 * Thread spawning predictors (paper Sections 3.1 and 3.1.3):
 *
 *  - Thread selection: an array of 2-bit saturating counters indexed by
 *    thread start address.  A thread is spawned only when its counter
 *    is above one.  Counters are trained by actual thread outcomes
 *    (retired useful / squashed) *and* by a passive estimator that
 *    watches the retirement stream, pushing potential spawn points on a
 *    stack and popping them when the retired PC reaches the join point;
 *    the thread distance (spawn points in between) decides the update
 *    direction.  Threads that retire too small or with too little
 *    overlap reset their counter.
 *
 *  - After-loop target history: a small table remembering, per
 *    backward-branch PC, where control actually went after the loop —
 *    used to seed after-loop threads whose start differs from the
 *    fall-through default.
 */

#ifndef DMT_DMT_SPAWN_PRED_HH
#define DMT_DMT_SPAWN_PRED_HH

#include <vector>

#include "common/types.hh"

namespace dmt
{

/** Spawn-point selection + after-loop target prediction. */
class SpawnPredictor
{
  public:
    SpawnPredictor(int table_bits, int max_contexts,
                   int min_thread_size);

    /** Should a thread starting at @p start_pc be spawned? */
    bool selected(Addr start_pc) const;

    /** Outcome feedback from a real thread. */
    void onThreadRetired(Addr start_pc, bool useful, bool too_small);
    void onThreadSquashed(Addr start_pc);

    // ---- passive estimator (driven by the retirement stream) ----------

    /** A spawn point retired (call or loop-closing branch). */
    void onRetireSpawnPoint(Addr join_pc);

    /** Every retired instruction's PC, in order. */
    void onRetirePc(Addr pc);

    // ---- after-loop target history -------------------------------------

    /** Learn where control went after the loop closed by @p branch_pc. */
    void recordLoopExit(Addr branch_pc, Addr exit_pc);

    /** Predicted after-loop thread start (default fall-through). */
    Addr predictAfterLoop(Addr branch_pc) const;

    /** Counter value for tests. */
    int counterOf(Addr start_pc) const;

  private:
    u32 index(Addr pc) const;
    void bump(Addr start_pc, bool up);

    int table_bits;
    int max_contexts;
    int min_thread_size;
    u64 retired_seq = 0;
    u32 mask;
    std::vector<u8> counters;

    struct StackEntry
    {
        Addr join_pc;
        u64 spawn_seq;   ///< spawn counter value at push
        u64 retired_seq; ///< retired-instruction count at push
    };
    static constexpr int kStackDepth = 64;
    std::vector<StackEntry> stack;
    u64 spawn_seq = 0;

    struct LoopExitEntry
    {
        bool valid = false;
        Addr branch_pc = 0;
        Addr exit_pc = 0;
    };
    static constexpr int kLoopExitEntries = 512;
    std::vector<LoopExitEntry> loop_exits;
};

} // namespace dmt

#endif // DMT_DMT_SPAWN_PRED_HH
