/**
 * @file
 * The DMT processor engine: a cycle-level simultaneous-multithreading
 * out-of-order core executing a single program as hardware-spawned
 * speculative threads (Akkary & Driscoll, MICRO-31 1998).
 *
 * One engine class covers both machines of the paper: with
 * max_threads == 1 and spawning off it is the baseline superscalar
 * (same pipeline, one retire stage in effect, no data speculation on
 * thread inputs); with more contexts it is the DMT processor.
 *
 * Pipeline stages evaluated per cycle (see step()):
 *   writeback -> recovery walk -> dispatch/rename -> issue -> fetch ->
 *   early retire -> store drain -> final retire
 *
 * Key invariant: the finally-retired instruction stream is verified
 * against an independent sequential execution by a GoldenChecker.
 */

#ifndef DMT_DMT_ENGINE_HH
#define DMT_DMT_ENGINE_HH

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "branch/predictor.hh"
#include "casm/program.hh"
#include "common/ring_queue.hh"
#include "dmt/dataflow_pred.hh"
#include "dmt/dyninst.hh"
#include "dmt/lookahead.hh"
#include "dmt/lsq.hh"
#include "dmt/order_tree.hh"
#include "dmt/ready_queue.hh"
#include "dmt/spawn_pred.hh"
#include "dmt/stats.hh"
#include "dmt/thread.hh"
#include "fault/injector.hh"
#include "memory/hierarchy.hh"
#include "sim/checker.hh"
#include "sim/mainmem.hh"
#include "trace/tracer.hh"
#include "uarch/fu.hh"
#include "uarch/physregs.hh"

namespace dmt
{

struct Checkpoint;

/** The DMT / baseline-superscalar cycle simulator. */
class DmtEngine : public OrderOracle
{
  public:
    /**
     * @param resume optional architectural checkpoint to start from:
     *        mid-stream PC, registers and memory replace the program's
     *        entry conditions, and the golden checker is forked from
     *        the same snapshot.  The checkpoint must not be halted.
     *        Microarchitectural state (caches, predictors, spawn
     *        tables) starts cold — pair with cfg.warmup_retired so
     *        measurement begins warm.
     */
    DmtEngine(const SimConfig &cfg, const Program &prog,
              const Checkpoint *resume = nullptr);

    /** Run until HALT retires or a configured limit triggers. */
    void run();

    /** Advance one cycle (exposed for tests). */
    void step();

    /** True when the program's HALT has finally retired, or a
     *  configured retirement/cycle limit has been reached. */
    bool done() const { return done_; }

    /** True specifically when HALT retired (program completed). */
    bool programCompleted() const { return program_done; }

    /** Instructions finally retired since construction — includes any
     *  warmup window the stat block has already detached from. */
    u64 retiredTotal() const { return retired_total; }

    Cycle now() const { return now_; }

    const DmtStats &stats() const { return stats_; }
    const SimConfig &config() const { return cfg; }

    /** False while a cfg.warmup_retired window is still detaching the
     *  stat block; true once measurement has begun (always true when
     *  no warmup window is configured). */
    bool measurementActive() const { return !warmup_pending_; }

    /** Values emitted by retired OUT instructions, in order. */
    const std::vector<u32> &outputStream() const { return out_stream; }

    /** Golden-checker status. */
    bool goldenOk() const;
    std::string goldenError() const;

    /** Architectural (retired) register value. */
    u32 retiredReg(LogReg r) const { return retire_regs[r]; }

    /** Architectural memory image.  Stores reach it only at final
     *  retirement and loads never allocate pages, so after a completed
     *  run it must equal a functional execution's memory sparse-page
     *  exactly (the conformance harness relies on this). */
    const MainMemory &memory() const { return mem; }

    /** Cache hierarchy (for cache statistics). */
    const MemHierarchy &hierarchy() const { return hier; }

    /** Number of currently active thread contexts. */
    int activeThreads() const { return tree.size(); }

    /** Telemetry front door (sink injection, ring readback). */
    Tracer &tracer() { return tracer_; }

    /** Fault injector (configured from cfg.fault + DMT_FAULT env). */
    const FaultInjector &faults() const { return injector_; }

    // OrderOracle: program order of two dynamic memory operations.
    bool memBefore(ThreadId tid_a, u64 tb_a, ThreadId tid_b,
                   u64 tb_b) const override;

    /** Observation hook invoked for every finally-retired entry (after
     *  its effects committed).  Used by tests and trace tooling. */
    std::function<void(const TBEntry &, ThreadId)> retire_hook;

    /** Debug event tracing to stderr (set via DMT_DEBUG=1). */
    bool debug_trace = false;

  private:
    friend class EngineInspector;   // white-box testing hook
    friend class InvariantAuditor;  // structural invariant sweeps
    friend class Postmortem;        // crash-dump state snapshotter

    // ---- pipeline stages (one file each) --------------------------------
    void doWriteback();
    void doRecovery();
    void doDispatch();
    void doIssue();
    void doFetch();
    void doEarlyRetire();
    void doStoreDrain();
    void doFinalRetire();

    // ---- fetch helpers (engine_fetch.cc) ---------------------------------
    void fetchForThread(ThreadContext &t, int max_insts);
    Addr successorStartPc(const ThreadContext &t) const;
    void checkThreadMispredictions();

    // ---- dispatch helpers (engine_rename.cc) -----------------------------
    bool dispatchOne(ThreadContext &t, const FetchedInst &fi);
    void trySpawn(ThreadContext &parent, TBEntry &entry,
                  const ThreadBranchState &spawn_bstate);
    ThreadId allocateContext(ThreadContext &parent);
    void spawnThread(ThreadContext &parent, TBEntry &entry,
                     Addr start_pc, bool is_loop,
                     const ThreadBranchState &spawn_bstate);
    void resolveOperand(ThreadContext &t, const TBEntry &entry, int i,
                        DynInst *d);
    void subscribePhys(PhysReg p, DynInst *d, int op);
    void armDataflowWatches(ThreadContext &t);
    void matchDataflowWatches(ThreadContext &producer, DynInst *d,
                              const TBEntry &entry);

    // ---- execute/writeback helpers (engine_execute.cc) -------------------
    void issueDyn(DynInst *d);
    void executeDyn(DynInst *d);
    void executeMem(DynInst *d, TBEntry &entry);
    void scheduleCompletion(DynInst *d, Cycle latency);
    void completeDyn(DynInst *d);
    void resolveControl(DynInst *d, TBEntry &entry);
    void deliverPhys(PhysReg p, u32 value);
    void deliverInput(ThreadContext &t, LogReg r, u32 value,
                      bool from_dataflow);
    void wakeOperand(DynInst *d, int op, u32 value);
    void makeReady(DynInst *d);
    void recoveryStepThread(ThreadContext &t, int &dispatch_budget);
    void noteRecoveryDone(ThreadContext &t);
    bool redispatchEntry(ThreadContext &t, TBEntry &entry);
    void requestRecovery(ThreadContext &t, const RecoveryRequest &req);
    void handleLsqViolations(const std::vector<i32> &lq_ids);

    // ---- retire helpers (engine_retire.cc) --------------------------------
    void earlyRetireThread(ThreadContext &t, int width);
    void finalRetireHead();
    bool finalRetireEntry(ThreadContext &t, TBEntry &entry);
    void lateDivergenceFlush(ThreadContext &t, const TBEntry &entry);
    void headSwitch(ThreadContext &t);
    void fullyRetireThread(ThreadContext &t);
    void noteRetiredForPredictors(const TBEntry &entry);

    // ---- squash machinery (engine.cc) --------------------------------------
    void squashDyn(DynInst *d);
    void inThreadSquash(ThreadContext &t, u64 from_tb_id,
                        Addr new_fetch_pc,
                        const BranchCheckpoint *checkpoint);
    void releaseEntryState(ThreadContext &t, TBEntry &entry,
                           bool squashed);
    void squashThreadTree(ThreadId tid);
    void squashThread(ThreadContext &t);

    // ---- misc helpers -------------------------------------------------------
    ThreadContext &ctx(ThreadId tid);
    const ThreadContext &ctx(ThreadId tid) const;
    ThreadContext *get(ThreadId tid, u32 gen);
    bool isHead(const ThreadContext &t) const;
    PhysReg allocPhys();
    void checkRegConservation();
    [[noreturn]] void watchdogExpired();
    void beginMeasurement();

    // ---- configuration and substrate -------------------------------------
    SimConfig cfg;
    /** Owned copy: the engine outlives any caller temporary. */
    const Program prog;
    MainMemory mem;
    MemHierarchy hier;
    BranchPredictorUnit bpu;
    PhysRegFile prf;
    DynPool pool;
    Lsq lsq;
    OrderTree tree;
    SpawnPredictor spawn_pred;
    DataflowPredictor df_pred;
    FuPool fus;
    std::unique_ptr<GoldenChecker> checker;

    // ---- machine state ------------------------------------------------------
    std::vector<std::unique_ptr<ThreadContext>> threads;
    Cycle now_ = 0;
    u64 next_seq = 1;
    int window_used = 0;
    bool done_ = false;
    bool program_done = false;
    bool head_validated = false; ///< current head passed input check
    bool head_drain_ok = false;  ///< prior threads' stores drained

    // Ready queue (age-indexed min-heap) and completion calendar.
    ReadyQueue ready_q;
    static constexpr int kCalendarSlots = 256;
    std::array<std::vector<DynRef>, kCalendarSlots> calendar;

    // Physical-register subscriptions.
    struct PhysWaiter
    {
        DynRef dyn;
        u8 op;
    };
    struct IoSub
    {
        ThreadId tid;
        u32 tgen;
        LogReg reg;
    };
    struct PhysSubs
    {
        std::vector<PhysWaiter> waiters;
        std::vector<IoSub> io_subs;
    };
    std::vector<PhysSubs> psubs;

    // Thread-input waiters, per thread per logical register.
    struct IoWaiter
    {
        DynRef dyn;
        u8 op;
    };
    std::vector<std::array<std::vector<IoWaiter>, kNumLogRegs>> io_waiters;

    // Architectural retirement state.
    std::array<u32, kNumLogRegs> retire_regs{};
    std::array<Addr, kNumLogRegs> last_mod_pc{};
    u64 retired_total = 0;
    std::vector<u32> out_stream;

    // Statistics warmup (cfg.warmup_retired): the stat block detaches
    // until the warmup boundary retires, and the cache-hierarchy
    // snapshot in run() subtracts the counts accumulated before it.
    bool warmup_pending_ = false;
    u64 meas_il_miss_base_ = 0;
    u64 meas_il_hit_base_ = 0;
    u64 meas_dl_miss_base_ = 0;
    u64 meas_dl_hit_base_ = 0;

    // Store drain queue (program order).
    RingQueue<i32> drain_q;

    // Lookahead accounting.
    EpisodeTracker branch_eps;
    EpisodeTracker imiss_eps;

    // Loop-exit learning: active loops observed in the retirement
    // stream, waiting for control to leave the loop body.
    struct LoopWatch
    {
        Addr branch_pc;
        Addr body_lo;
        Addr body_hi;
        int call_depth; ///< procedure nesting relative to the loop
    };
    std::vector<LoopWatch> loop_watches;

    // Round-robin cursor over speculative threads for fetch.
    int fetch_rr = 0;

    // Memory-dependence throttle: 2-bit counters indexed by load PC.
    static constexpr u32 kMemdepEntries = 4096;
    std::vector<u8> memdep;
    bool memdepConservative(Addr pc) const;
    void memdepTrain(Addr pc, bool violated);

    /** Telemetry hook: stamps events with the current cycle.  Inlined
     *  one-branch no-op while tracing is disabled. */
    void
    emitTrace(TraceStage stage, TraceEventKind kind, ThreadId tid,
              Addr pc = 0, u64 a = 0, u64 b = 0)
    {
        tracer_.emit(now_, tid, stage, kind, pc, a, b);
    }
    void traceSampleTick();

    // ---- hot-loop scratch buffers ----------------------------------------
    // Reused cycle to cycle so steady-state step() performs no heap
    // allocation (see DESIGN.md section 11).  Each buffer is owned by
    // exactly one non-reentrant routine.
    std::vector<ReadyQueue::Item> issue_retry_scratch_; // doIssue
    std::vector<DynRef> wb_scratch_;                    // doWriteback
    std::vector<ThreadId> dispatch_order_scratch_;      // doDispatch
    std::vector<ThreadId> fetch_spec_scratch_;          // doFetch
    std::vector<DfItem> head_mispred_scratch_;          // headSwitch
    RecoveryRequest recov_req_scratch_;  // single-event requests
    std::vector<ThreadId> squash_victims_scratch_;      // squashThreadTree
    std::vector<ThreadId> squash_stack_scratch_;        // squashThreadTree

    DmtStats stats_;
    Tracer tracer_;
    FaultInjector injector_;
};

} // namespace dmt

#endif // DMT_DMT_ENGINE_HH
