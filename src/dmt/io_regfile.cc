#include "dmt/io_regfile.hh"

// IoRegFile is a plain aggregate; compiled standalone for the
// self-containment check.
