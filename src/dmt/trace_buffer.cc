#include "dmt/trace_buffer.hh"

namespace dmt
{

u64
TraceBuffer::append(TBEntry entry)
{
    DMT_ASSERT(!full(), "append to full trace buffer");

    entry.id = endId();

    // Trace-buffer rename: map register sources to the thread-local
    // last writer, or to the thread input register file.
    const Instruction &inst = entry.inst;
    const int nsrc = inst.numSrcs();
    for (int i = 0; i < 2; ++i) {
        entry.src[i] = SrcRef{};
        if (i >= nsrc)
            continue;
        const LogReg r = inst.src(i);
        if (r == 0)
            continue; // r0 reads as constant zero, no dependency
        u64 writer;
        if (lastWriter(r, &writer)) {
            // The producer may already have finally retired (only for
            // the head thread); readers then take the architectural
            // retirement value.  SrcRef keeps the id either way.
            entry.src[i] = SrcRef{SrcRef::TbEntry, r, writer};
        } else {
            entry.src[i] = SrcRef{SrcRef::ThreadInput, r, 0};
        }
    }

    const int dest = inst.effectiveDest();
    entry.has_dest = dest >= 0;
    entry.dest = dest >= 0 ? static_cast<LogReg>(dest) : 0;
    if (entry.has_dest) {
        last_writer_[entry.dest] = entry.id;
        has_writer[entry.dest] = 1;
    }

    store_[slotOf(entry.id)] = entry;
    ++count_;
    ++total_appended;
    return entry.id;
}

} // namespace dmt
