#include "dmt/lsq.hh"

#include <algorithm>

#include "common/log.hh"

namespace dmt
{

Lsq::Lsq(int lq_per_thread_, int sq_per_thread_, int max_threads)
    : lq_per_thread(lq_per_thread_), sq_per_thread(sq_per_thread_)
{
    const int lq_total = lq_per_thread * max_threads;
    const int sq_total = sq_per_thread * max_threads;
    loads.resize(static_cast<size_t>(lq_total));
    stores.resize(static_cast<size_t>(sq_total));
    // Per-slot lists are bounded by the load-queue population; reserve
    // the bound up front so no slot ever grows on the hot path.
    for (LsqStore &st : stores) {
        st.stall_waiters.reserve(static_cast<size_t>(lq_total));
        st.forwardees.reserve(static_cast<size_t>(lq_total));
    }
    for (int i = lq_total - 1; i >= 0; --i)
        free_loads.push_back(i);
    for (int i = sq_total - 1; i >= 0; --i)
        free_stores.push_back(i);
    lq_count.assign(static_cast<size_t>(max_threads), 0);
    sq_count.assign(static_cast<size_t>(max_threads), 0);
    loads_by_word.init(static_cast<size_t>(lq_total));
    stores_by_word.init(static_cast<size_t>(sq_total));
    violations_scratch_.reserve(static_cast<size_t>(lq_total));
    free_store_result_.orphaned_loads.reserve(
        static_cast<size_t>(lq_total));
    free_store_result_.stall_waiters.reserve(
        static_cast<size_t>(lq_total));
}

i32
Lsq::allocLoad(ThreadId tid, u32 tgen, u64 tb_id)
{
    if (lqFull(tid) || free_loads.empty())
        return -1;
    const i32 id = free_loads.back();
    free_loads.pop_back();
    LsqLoad &e = loads[static_cast<size_t>(id)];
    e = LsqLoad{};
    e.valid = true;
    e.tid = tid;
    e.tgen = tgen;
    e.tb_id = tb_id;
    ++lq_count[static_cast<size_t>(tid)];
    return id;
}

i32
Lsq::allocStore(ThreadId tid, u32 tgen, u64 tb_id)
{
    if (sqFull(tid) || free_stores.empty())
        return -1;
    const i32 id = free_stores.back();
    free_stores.pop_back();
    LsqStore &e = stores[static_cast<size_t>(id)];
    // Field-wise reset: assigning LsqStore{} would free the vectors'
    // capacity that freeStore() deliberately preserved.
    e.valid = true;
    e.tid = tid;
    e.tgen = tgen;
    e.tb_id = tb_id;
    e.executed = false;
    e.addr = 0;
    e.bytes = 0;
    e.data = 0;
    e.retired = false;
    e.retire_seq = 0;
    e.stall_waiters.clear();
    e.forwardees.clear();
    ++sq_count[static_cast<size_t>(tid)];
    return id;
}

void
Lsq::freeLoad(i32 id)
{
    LsqLoad &e = load(id);
    if (e.issued)
        loads_by_word.remove(wordOf(e.addr), id);
    --lq_count[static_cast<size_t>(e.tid)];
    e.valid = false;
    free_loads.push_back(id);
}

const Lsq::FreeStoreResult &
Lsq::freeStore(i32 id, bool squashed)
{
    FreeStoreResult &result = free_store_result_;
    result.orphaned_loads.clear();
    result.stall_waiters.clear();
    LsqStore &e = store(id);
    if (e.executed) {
        stores_by_word.remove(wordOf(e.addr), id);
        // Detach loads that forwarded from this store.  On a squash
        // they consumed phantom data and must re-execute; on a normal
        // drain their data was correct, but the dangling reference
        // must still be cleared before the slot is reused.
        for (i32 lid : e.forwardees) {
            LsqLoad &ld = loads[static_cast<size_t>(lid)];
            if (!ld.valid || !ld.issued || ld.fwd_store != id)
                continue;
            ld.fwd_store = -1;
            if (squashed)
                result.orphaned_loads.push_back(lid);
        }
    }
    // Copy (not move) so both the entry's and the scratch's capacity
    // survive for reuse.
    result.stall_waiters.assign(e.stall_waiters.begin(),
                                e.stall_waiters.end());
    --sq_count[static_cast<size_t>(e.tid)];
    e.valid = false;
    e.stall_waiters.clear();
    e.forwardees.clear();
    free_stores.push_back(id);
    return result;
}

bool
Lsq::lqFull(ThreadId tid) const
{
    return lq_count[static_cast<size_t>(tid)] >= lq_per_thread;
}

bool
Lsq::sqFull(ThreadId tid) const
{
    return sq_count[static_cast<size_t>(tid)] >= sq_per_thread;
}

LsqLoad &
Lsq::load(i32 id)
{
    DMT_ASSERT(id >= 0 && id < static_cast<i32>(loads.size())
               && loads[static_cast<size_t>(id)].valid,
               "bad load id %d", id);
    return loads[static_cast<size_t>(id)];
}

LsqStore &
Lsq::store(i32 id)
{
    DMT_ASSERT(id >= 0 && id < static_cast<i32>(stores.size())
               && stores[static_cast<size_t>(id)].valid,
               "bad store id %d", id);
    return stores[static_cast<size_t>(id)];
}

bool
Lsq::overlaps(Addr a1, u8 b1, Addr a2, u8 b2)
{
    return a1 < a2 + b2 && a2 < a1 + b1;
}

bool
Lsq::contains(Addr load_addr, u8 load_bytes, Addr store_addr,
              u8 store_bytes)
{
    return store_addr <= load_addr
        && load_addr + load_bytes <= store_addr + store_bytes;
}

u32
Lsq::extractStoreBytes(const LsqStore &st, Addr load_addr, u8 load_bytes)
{
    DMT_ASSERT(contains(load_addr, load_bytes, st.addr, st.bytes),
               "extract from non-containing store");
    const u32 shift = (load_addr - st.addr) * 8;
    const u32 mask = load_bytes >= 4 ? ~0u : ((1u << (load_bytes * 8)) - 1);
    return (st.data >> shift) & mask;
}

Lsq::LoadIssueResult
Lsq::loadIssue(i32 lq_id, Addr addr, u8 bytes, const OrderOracle &order)
{
    LsqLoad &ld = load(lq_id);
    if (ld.issued)
        loads_by_word.remove(wordOf(ld.addr), lq_id);
    ld.issued = true;
    ld.addr = addr;
    ld.bytes = bytes;
    ld.fwd_store = -1;
    loads_by_word.insert(wordOf(addr), lq_id);

    // Find the latest program-order-earlier executed store overlapping
    // this address.  Chain order is arbitrary; the selected store is
    // the unique maximum under the strict total order storeBefore, so
    // the result does not depend on traversal order.
    LoadIssueResult result;
    i32 best = -1;
    for (i32 sid = stores_by_word.chainHead(wordOf(addr)); sid >= 0;
         sid = stores_by_word.chainNext(sid)) {
        const LsqStore &st = stores[static_cast<size_t>(sid)];
        if (!st.executed || !overlaps(addr, bytes, st.addr, st.bytes))
            continue;
        if (!storeBeforeLoad(st, ld, order))
            continue;
        if (best < 0
            || storeBefore(stores[static_cast<size_t>(best)], st,
                           order)) {
            best = sid;
        }
    }

    if (best < 0) {
        result.kind = LoadIssueResult::Memory;
        return result;
    }

    LsqStore &st = stores[static_cast<size_t>(best)];
    result.store_id = best;
    result.cross_thread = st.tid != ld.tid;
    if (contains(addr, bytes, st.addr, st.bytes)) {
        result.kind = LoadIssueResult::Forward;
        ld.fwd_store = best;
        st.forwardees.push_back(lq_id);
    } else {
        result.kind = LoadIssueResult::Stall;
    }
    return result;
}

void
Lsq::setLoadValue(i32 lq_id, u32 raw_value)
{
    load(lq_id).raw_value = raw_value;
}

const std::vector<i32> &
Lsq::storeExecute(i32 sq_id, Addr addr, u8 bytes, u32 data,
                  const OrderOracle &order)
{
    LsqStore &st = store(sq_id);
    const bool re_exec = st.executed;
    const Addr old_word = wordOf(st.addr);
    if (re_exec && old_word != wordOf(addr)) {
        stores_by_word.remove(old_word, sq_id);
        stores_by_word.insert(wordOf(addr), sq_id);
    } else if (!re_exec) {
        stores_by_word.insert(wordOf(addr), sq_id);
    }
    st.executed = true;
    st.addr = addr;
    st.bytes = bytes;
    st.data = data;

    std::vector<i32> &violations = violations_scratch_;
    violations.clear();
    auto consider = [&](i32 lid) {
        const LsqLoad &ld = loads[static_cast<size_t>(lid)];
        if (!ld.valid || !ld.issued)
            return;
        if (!storeBeforeLoad(st, ld, order))
            return;
        const bool overlap = overlaps(ld.addr, ld.bytes, st.addr,
                                      st.bytes);
        const bool was_fwd = ld.fwd_store == sq_id;
        bool stale;
        if (was_fwd) {
            // Fine only if the new address/data reproduce what the load
            // already observed.
            stale = !contains(ld.addr, ld.bytes, st.addr, st.bytes)
                || extractStoreBytes(st, ld.addr, ld.bytes)
                       != ld.raw_value;
        } else {
            // The load read around this store: stale iff it overlaps,
            // unless a *later* (but still earlier-than-load) store had
            // already forwarded the value the load used — that store
            // shadows this one — or the store writes exactly the bytes
            // the load already observed (silent store w.r.t. this load).
            stale = overlap;
            if (stale && contains(ld.addr, ld.bytes, st.addr, st.bytes)
                && extractStoreBytes(st, ld.addr, ld.bytes)
                       == ld.raw_value) {
                stale = false;
            }
            if (stale && ld.fwd_store >= 0) {
                const LsqStore &fwd =
                    stores[static_cast<size_t>(ld.fwd_store)];
                if (fwd.valid && fwd.executed
                    && storeBefore(st, fwd, order)
                    && contains(ld.addr, ld.bytes, fwd.addr, fwd.bytes)) {
                    stale = false;
                }
            }
        }
        if (stale)
            violations.push_back(lid);
    };

    // Loads overlapping the new address.
    for (i32 lid = loads_by_word.chainHead(wordOf(addr)); lid >= 0;
         lid = loads_by_word.chainNext(lid)) {
        consider(lid);
    }
    // Loads that forwarded from this store under the previous address.
    if (re_exec && old_word != wordOf(addr)) {
        for (i32 lid = loads_by_word.chainHead(old_word); lid >= 0;
             lid = loads_by_word.chainNext(lid)) {
            const LsqLoad &ld = loads[static_cast<size_t>(lid)];
            if (ld.valid && ld.issued && ld.fwd_store == sq_id)
                consider(lid);
        }
    }

    // Deduplicate (a load can be reached via both paths).
    std::sort(violations.begin(), violations.end());
    violations.erase(std::unique(violations.begin(), violations.end()),
                     violations.end());
    return violations;
}

void
Lsq::storeRetired(i32 sq_id, u64 retire_seq)
{
    LsqStore &st = store(sq_id);
    st.retired = true;
    st.retire_seq = retire_seq;
}

bool
Lsq::storeBefore(const LsqStore &a, const LsqStore &b,
                 const OrderOracle &order) const
{
    if (a.retired && b.retired)
        return a.retire_seq < b.retire_seq;
    if (a.retired != b.retired)
        return a.retired; // retired stores precede speculative ones
    return order.memBefore(a.tid, a.tb_id, b.tid, b.tb_id);
}

bool
Lsq::storeBeforeLoad(const LsqStore &st, const LsqLoad &ld,
                     const OrderOracle &order)
{
    if (st.retired)
        return true; // the load is still live, hence later
    return order.memBefore(st.tid, st.tb_id, ld.tid, ld.tb_id);
}

void
Lsq::addStallWaiter(i32 sq_id, DynRef dyn)
{
    store(sq_id).stall_waiters.push_back(dyn);
}

bool
Lsq::hasUnexecutedEarlierStore(ThreadId tid, u64 tb_id,
                               const OrderOracle &order) const
{
    for (const LsqStore &st : stores) {
        if (!st.valid || st.executed)
            continue;
        if (st.tid == tid ? st.tb_id < tb_id
                          : order.memBefore(st.tid, st.tb_id, tid,
                                            tb_id)) {
            return true;
        }
    }
    return false;
}

int
Lsq::loadCount(ThreadId tid) const
{
    return lq_count[static_cast<size_t>(tid)];
}

int
Lsq::storeCount(ThreadId tid) const
{
    return sq_count[static_cast<size_t>(tid)];
}

} // namespace dmt
