/**
 * @file
 * CLI client for the simulation daemon (dmt_served).
 *
 *     dmt_client [--port P] [--wait S] [--retries N] [--timeout S]
 *                [--deadline MS] <command> ...
 *
 *     ping                      round-trip check (exit 0 iff alive)
 *     stats                     print the daemon's stats object
 *     shutdown                  ask the daemon to drain and exit
 *     run <workload> [k=v ...]  submit one job, print the RunResult
 *     spec <job.json>           submit the job object from a file
 *     batch <grid.json>         pipeline a whole grid, print a summary
 *
 * `run` key=value pairs: `max_retired`, `sample` (skip:warm:measure
 * spec string) and `priority` are job-level; every other key is a
 * config override (exactly the keys SimConfig::jsonOn() emits, plus
 * `machine=dmt|baseline`).  Values `true`/`false` are booleans,
 * anything else must be a number.
 *
 * `batch` grid files hold {"jobs":[{...job...},...]} (or a bare
 * array).  All jobs are pipelined on one connection; the summary line
 *
 *     batch: jobs=N ok=N failed=0 hits=H simulated=S
 *
 * is stable for scripting — a second pass over the same grid must show
 * simulated=0 when the daemon's result cache is on.
 *
 * --wait S retries the initial connect for S seconds, the idiom for
 * "the daemon was just started in the background".
 *
 * Resilience: --retries N drives run/spec/batch jobs through
 * ServeClient::requestWithRetry() (reconnect + seeded backoff through
 * refusals, timeouts, overloaded/draining replies and corrupted
 * transport); --timeout S bounds each reply wait; --deadline MS
 * attaches a wall-clock budget to `run` jobs (spec/batch jobs carry
 * their own "deadline_ms").  With retries on, batch runs lock-step
 * instead of pipelined so each job can be retried independently.
 *
 * Fault drills: DMT_FAULTNET=1 interposes an in-process fault-
 * injecting proxy (serve/faultnet.hh; DMT_FAULTNET_RATE/_SEED/
 * _STALL_MS) between this client and the daemon, forces retries on,
 * and prints the injected-fault tally on stderr at exit — the CI storm
 * harness asserts results through the proxy are byte-identical to
 * direct ones.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/json.hh"
#include "serve/client.hh"
#include "serve/faultnet.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

namespace
{

using namespace dmt;

/** Lock-step request/reply options shared by every command. */
struct ClientOptions
{
    int port = 0;       ///< the daemon (or proxy) port to talk to
    int retries = 0;    ///< >0 enables requestWithRetry with N attempts
    double timeout_s = 0.0;
    u64 deadline_ms = 0;
    RetryPolicy policy;
};

/** One lock-step request honoring the retry/timeout options. */
bool
doRequest(ServeClient &client, const ClientOptions &opt,
          const std::string &line, i64 id, JsonValue *reply,
          std::string *err)
{
    if (opt.retries > 0)
        return client.requestWithRetry(opt.port, line, id, opt.policy,
                                       reply, err);
    client.setTimeout(opt.timeout_s);
    return client.request(line, reply, err);
}

int
die(const std::string &msg)
{
    std::fprintf(stderr, "dmt_client: %s\n", msg.c_str());
    return 1;
}

bool
readFile(const std::string &path, std::string *out, std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *err = "cannot read " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

/** true/false become booleans, everything else must parse as a
 *  number — mirroring the types the protocol accepts. */
bool
writeScalar(JsonWriter &w, const std::string &value, std::string *err)
{
    if (value == "true" || value == "false") {
        w.value(value == "true");
        return true;
    }
    char *end = nullptr;
    const double d = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
        *err = "value \"" + value + "\" is neither a boolean nor "
            "a number";
        return false;
    }
    w.value(d);
    return true;
}

/** Build a job object from `run <workload> [k=v ...]` arguments. */
bool
buildJobJson(const std::vector<std::string> &args, u64 deadline_ms,
             std::string *out, std::string *err)
{
    JsonWriter w;
    w.beginObject();
    w.key("workload").value(std::string_view(args[0]));
    if (deadline_ms > 0)
        w.key("deadline_ms").value(deadline_ms);
    std::vector<std::pair<std::string, std::string>> config;
    for (size_t i = 1; i < args.size(); ++i) {
        const size_t eq = args[i].find('=');
        if (eq == std::string::npos) {
            *err = "expected key=value, got \"" + args[i] + "\"";
            return false;
        }
        const std::string key = args[i].substr(0, eq);
        const std::string value = args[i].substr(eq + 1);
        if (key == "sample") {
            w.key("sample").value(std::string_view(value));
        } else if (key == "max_retired" || key == "priority") {
            w.key(key);
            if (!writeScalar(w, value, err))
                return false;
        } else {
            config.emplace_back(key, value);
        }
    }
    if (!config.empty()) {
        w.key("config").beginObject();
        for (const auto &[key, value] : config) {
            w.key(key);
            if (key == "machine")
                w.value(std::string_view(value));
            else if (!writeScalar(w, value, err))
                return false;
        }
        w.endObject();
    }
    w.endObject();
    *out = w.str();
    return true;
}

std::string
requestLineForJob(i64 id, const std::string &job_json)
{
    JsonWriter w;
    w.beginObject();
    w.key("op").value("run");
    w.key("id").value(id);
    w.key("job").rawValue(job_json);
    w.endObject();
    return w.str();
}

/** Print one run reply: the byte-exact canonical result (sliced from
 *  the wire line, never re-serialized) on stdout, provenance
 *  (cached/key/result_hash) on stderr.  Returns the exit status. */
int
printRunReply(const JsonValue &reply, const std::string &wire_line)
{
    const JsonValue *ok = reply.find("ok");
    if (!ok || ok->type() != JsonValue::Type::Bool || !ok->asBool()) {
        const JsonValue *e = reply.find("error");
        return die("job failed: "
                   + (e && e->type() == JsonValue::Type::String
                          ? e->asString()
                          : std::string("malformed reply")));
    }
    std::string raw;
    if (!extractRawResult(wire_line, &raw))
        return die("reply carries no result document");
    std::printf("%s\n", raw.c_str());
    const JsonValue *cached = reply.find("cached");
    const JsonValue *key = reply.find("key");
    const JsonValue *rh = reply.find("result_hash");
    std::fprintf(stderr, "dmt_client: %s key=%s result_hash=%s\n",
                 cached && cached->asBool() ? "cached" : "simulated",
                 key ? key->asString().c_str() : "?",
                 rh ? rh->asString().c_str() : "?");
    return 0;
}

int
runBatch(ServeClient &client, const ClientOptions &opt,
         const std::string &path)
{
    std::string text, err;
    if (!readFile(path, &text, &err))
        return die(err);
    JsonValue root;
    if (!JsonValue::parse(text, &root, &err))
        return die(path + ": " + err);
    const JsonValue *jobs = &root;
    if (root.type() == JsonValue::Type::Object) {
        jobs = root.find("jobs");
        if (!jobs)
            return die(path + ": no \"jobs\" array");
    }
    if (jobs->type() != JsonValue::Type::Array)
        return die(path + ": jobs must be an array");
    const auto &items = jobs->elements();
    if (items.empty())
        return die(path + ": empty grid");

    // Pipeline everything on the one connection, then collect replies
    // (completion order) and match them back to jobs by id.  With
    // retries on, run lock-step instead: each job is driven to a
    // definitive reply on its own, so one lost reply cannot strand the
    // rest of the pipeline.
    std::map<i64, std::string> labels;
    std::vector<std::string> lines(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
        JsonWriter jw;
        items[i].writeTo(jw);
        const i64 id = static_cast<i64>(i);
        const JsonValue *w = items[i].find("workload");
        labels[id] = w && w->type() == JsonValue::Type::String
            ? w->asString()
            : "job" + std::to_string(i);
        lines[i] = requestLineForJob(id, jw.str());
        if (opt.retries == 0 && !client.sendLine(lines[i], &err))
            return die(err);
    }

    u64 ok_n = 0, failed = 0, hits = 0, simulated = 0;
    for (size_t i = 0; i < items.size(); ++i) {
        JsonValue reply;
        if (opt.retries > 0) {
            if (!client.requestWithRetry(opt.port, lines[i],
                                         static_cast<i64>(i),
                                         opt.policy, &reply, &err))
                return die(err);
        } else {
            client.setTimeout(opt.timeout_s);
            if (!client.recvReply(&reply, &err))
                return die(err);
        }
        const JsonValue *idv = reply.find("id");
        const i64 id = idv && idv->type() == JsonValue::Type::Number
            ? static_cast<i64>(idv->asNumber())
            : -1;
        const std::string &label = labels.count(id) ? labels[id] : "?";
        const JsonValue *okv = reply.find("ok");
        if (!okv || okv->type() != JsonValue::Type::Bool
            || !okv->asBool()) {
            const JsonValue *e = reply.find("error");
            std::fprintf(stderr, "  %-10s FAILED: %s\n", label.c_str(),
                         e && e->type() == JsonValue::Type::String
                             ? e->asString().c_str()
                             : "malformed reply");
            ++failed;
            continue;
        }
        const JsonValue *cached = reply.find("cached");
        const bool hit = cached && cached->asBool();
        hit ? ++hits : ++simulated;
        ++ok_n;
        const JsonValue *res = reply.find("result");
        const JsonValue *ipc = res ? res->find("ipc") : nullptr;
        const JsonValue *cyc = res ? res->find("cycles") : nullptr;
        std::printf("  %-10s %-9s ipc %.3f  %llu cycles\n",
                    label.c_str(), hit ? "cached" : "simulated",
                    ipc ? ipc->asNumber() : 0.0,
                    static_cast<unsigned long long>(
                        cyc ? cyc->asNumber() : 0.0));
    }
    std::printf("batch: jobs=%zu ok=%llu failed=%llu hits=%llu "
                "simulated=%llu\n",
                items.size(), static_cast<unsigned long long>(ok_n),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(simulated));
    return failed == 0 ? 0 : 1;
}

int
runCommand(ServeClient &client, const ClientOptions &opt,
           const std::string &cmd, int arg, int argc, char **argv)
{
    std::string err;
    if (cmd == "ping" || cmd == "stats" || cmd == "shutdown") {
        JsonValue reply;
        if (!doRequest(client, opt, simpleRequestLine(cmd.c_str(), 0),
                       0, &reply, &err))
            return die(err);
        JsonWriter w;
        if (cmd == "stats") {
            const JsonValue *stats = reply.find("stats");
            if (!stats)
                return die("malformed stats reply");
            stats->writeTo(w);
        } else {
            reply.writeTo(w);
        }
        std::printf("%s\n", w.str().c_str());
        return 0;
    }

    if (cmd == "run") {
        std::vector<std::string> args(argv + arg, argv + argc);
        if (args.empty())
            return die("run needs a workload name");
        std::string job_json;
        if (!buildJobJson(args, opt.deadline_ms, &job_json, &err))
            return die(err);
        JsonValue reply;
        if (!doRequest(client, opt, requestLineForJob(0, job_json), 0,
                       &reply, &err))
            return die(err);
        return printRunReply(reply, client.lastLine());
    }

    if (cmd == "spec") {
        if (arg >= argc)
            return die("spec needs a file");
        std::string text;
        if (!readFile(argv[arg], &text, &err))
            return die(err);
        JsonValue job;
        if (!JsonValue::parse(text, &job, &err))
            return die(std::string(argv[arg]) + ": " + err);
        JsonWriter jw;
        job.writeTo(jw); // newline-free re-serialization for the wire
        JsonValue reply;
        if (!doRequest(client, opt, requestLineForJob(0, jw.str()), 0,
                       &reply, &err))
            return die(err);
        return printRunReply(reply, client.lastLine());
    }

    if (cmd == "batch") {
        if (arg >= argc)
            return die("batch needs a grid file");
        return runBatch(client, opt, argv[arg]);
    }

    return die("unknown command \"" + cmd + "\"");
}

} // namespace

int
main(int argc, char **argv)
{
    int port = ServeOptions::fromEnv().port;
    double wait_s = 0.0;
    ClientOptions opt;

    int arg = 1;
    while (arg < argc && argv[arg][0] == '-') {
        const std::string flag = argv[arg];
        if (flag == "--port" && arg + 1 < argc) {
            port = std::atoi(argv[++arg]);
        } else if (flag == "--wait" && arg + 1 < argc) {
            wait_s = std::atof(argv[++arg]);
        } else if (flag == "--retries" && arg + 1 < argc) {
            opt.retries = std::atoi(argv[++arg]);
        } else if (flag == "--timeout" && arg + 1 < argc) {
            opt.timeout_s = std::atof(argv[++arg]);
        } else if (flag == "--deadline" && arg + 1 < argc) {
            opt.deadline_ms = static_cast<u64>(
                std::strtoull(argv[++arg], nullptr, 10));
        } else {
            return die("unknown flag \"" + flag + "\" (see the file "
                       "header for usage)");
        }
        ++arg;
    }
    if (arg >= argc)
        return die("usage: dmt_client [--port P] [--wait S] "
                   "[--retries N] [--timeout S] [--deadline MS] "
                   "ping|stats|shutdown|run|spec|batch ...");
    const std::string cmd = argv[arg++];

    // DMT_FAULTNET=1: interpose the fault-injecting proxy and talk to
    // it instead; retries become mandatory — that is the drill.
    std::unique_ptr<FaultNetProxy> proxy;
    if (parseEnvU64("DMT_FAULTNET", 0, 0, 1) != 0) {
        proxy = std::make_unique<FaultNetProxy>(
            FaultNetOptions::fromEnv(port));
        std::string perr;
        if (!proxy->start(&perr))
            return die("faultnet: " + perr);
        port = proxy->port();
        if (opt.retries <= 0)
            opt.retries = 10;
        if (opt.timeout_s <= 0)
            opt.timeout_s = 30.0;
    }
    opt.port = port;
    opt.policy.attempts = opt.retries > 0 ? opt.retries : 1;
    opt.policy.op_timeout_s = opt.timeout_s;

    int rc;
    {
        ServeClient client;
        std::string err;
        if (!client.connect(port, &err, wait_s)) {
            // With retries on, let requestWithRetry own connecting —
            // the first accept may be a deliberate refusal.
            if (opt.retries == 0)
                return die(err);
        }
        rc = runCommand(client, opt, cmd, arg, argc, argv);
    }

    if (proxy) {
        const FaultNetProxy::Counters c = proxy->counters();
        proxy->stop();
        std::fprintf(stderr,
                     "dmt_client: faultnet connections=%llu "
                     "refused=%llu chunks=%llu garbled=%llu torn=%llu "
                     "dropped=%llu stalled=%llu\n",
                     static_cast<unsigned long long>(c.connections),
                     static_cast<unsigned long long>(c.refused),
                     static_cast<unsigned long long>(c.chunks),
                     static_cast<unsigned long long>(c.garbled),
                     static_cast<unsigned long long>(c.torn),
                     static_cast<unsigned long long>(c.dropped),
                     static_cast<unsigned long long>(c.stalled));
    }
    return rc;
}
