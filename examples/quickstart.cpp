/**
 * @file
 * Quickstart: assemble a small program, run it on the functional
 * simulator, the baseline superscalar and the DMT processor, and
 * compare.  This is the 60-second tour of the public API.
 */

#include <cstdio>

#include "casm/assembler.hh"
#include "workloads/workloads.hh"
#include "dmt/engine.hh"
#include "sim/functional.hh"

int
main()
{
    using namespace dmt;

    // 1. Assemble a program (recursive Fibonacci) from source text.
    const Program prog = assembleOrDie(R"(
            li   $a0, 16
            jal  fib
            out  $v0
            halt

    fib:    slti $t0, $a0, 2       # fib(n) = n < 2 ? n
            beqz $t0, rec
            move $v0, $a0
            ret
    rec:    addi $sp, $sp, -12     # : fib(n-1) + fib(n-2)
            sw   $ra, 8($sp)
            sw   $s0, 4($sp)
            sw   $a0, 0($sp)
            addi $a0, $a0, -1
            jal  fib
            move $s0, $v0
            lw   $a0, 0($sp)
            addi $a0, $a0, -2
            jal  fib
            add  $v0, $v0, $s0
            lw   $s0, 4($sp)
            lw   $ra, 8($sp)
            addi $sp, $sp, 12
            ret
    )");

    // 2. Functional reference run.
    ArchState state;
    MainMemory memory;
    state.reset(prog);
    memory.loadProgram(prog);
    const u64 steps = runFunctional(state, memory, prog);
    std::printf("functional : fib(16) = %u in %llu instructions\n",
                state.output.at(0),
                static_cast<unsigned long long>(steps));

    // 3. Cycle-level run of the same program on the baseline.
    DmtEngine fib_base(SimConfig::baseline(), prog);
    fib_base.run();
    std::printf("baseline   : %llu cycles, IPC %.2f, output %u, "
                "golden %s\n",
                static_cast<unsigned long long>(
                    fib_base.stats().cycles.value()),
                fib_base.stats().ipc(), fib_base.outputStream().at(0),
                fib_base.goldenOk() ? "PASS" : "FAIL");

    // 4. The DMT processor on a benchmark it likes: the go-like kernel
    //    (branchy evaluation with procedure calls).  Threads are
    //    spawned by hardware at calls and loop branches; every retired
    //    instruction is verified against the golden model as it runs.
    const Program go = buildWorkload("go");
    SimConfig base_cfg = SimConfig::baseline();
    base_cfg.max_retired = 60000;
    SimConfig dmt_cfg = SimConfig::dmt(6, 2);
    dmt_cfg.max_retired = 60000;

    DmtEngine base(base_cfg, go);
    base.run();
    DmtEngine processor(dmt_cfg, go);
    processor.run();

    std::printf("\n'go' kernel, 60k instructions:\n");
    std::printf("baseline   : %llu cycles, IPC %.2f\n",
                static_cast<unsigned long long>(
                    base.stats().cycles.value()),
                base.stats().ipc());
    std::printf("DMT (6T)   : %llu cycles, IPC %.2f\n",
                static_cast<unsigned long long>(
                    processor.stats().cycles.value()),
                processor.stats().ipc());
    std::printf("             %llu threads spawned, %llu joined, "
                "avg size %.1f insts\n",
                static_cast<unsigned long long>(
                    processor.stats().threads_spawned.value()),
                static_cast<unsigned long long>(
                    processor.stats().threads_joined.value()),
                processor.stats().thread_size.mean());
    std::printf("             golden check: %s\n",
                processor.goldenOk() ? "PASS" : "FAIL");

    const double speedup =
        static_cast<double>(base.stats().cycles.value())
        / static_cast<double>(processor.stats().cycles.value());
    std::printf("speedup    : %.2fx\n", speedup);
    return 0;
}
