/**
 * @file
 * The simulation daemon.  Binds 127.0.0.1 (DMT_SERVE_PORT, default
 * 1998; 0 picks an ephemeral port), serves the line-delimited JSON
 * protocol from src/serve/protocol.hh, and drains gracefully on
 * SIGTERM/SIGINT or a client "shutdown" request: queued jobs run to
 * completion and reply before the process exits.
 *
 *     DMT_SERVE_PORT=1998 DMT_SERVE_JOBS=4 dmt_served
 *
 * Scale/caching knobs (DMT_BENCH_INSTR, DMT_SAMPLE is ignored — jobs
 * carry their own sample spec — DMT_CKPT_DIR, DMT_SERVE_CACHE) are
 * read once at startup; see DESIGN.md §13.
 *
 * Robustness knobs (DESIGN.md §14): DMT_SERVE_CACHE_DIR spills every
 * computed result to disk so a crashed daemon restarted on the same
 * directory replays answered cells with simulated=0; DMT_SERVE_QUEUE
 * bounds the job queue (excess requests get structured "overloaded"
 * replies); DMT_SERVE_DEADLINE_S gives every job a default wall-clock
 * budget, enforced in queue and mid-simulation.
 */

#include <csignal>
#include <cstdio>

#include <chrono>
#include <string>
#include <thread>

#include "serve/server.hh"

namespace
{

volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    g_signal = sig;
}

} // namespace

int
main()
{
    using namespace dmt;

    const ServeOptions opts = ServeOptions::fromEnv();
    Server server(opts);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "dmt_served: %s\n", err.c_str());
        return 1;
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    std::printf("dmt_served: listening on 127.0.0.1:%d\n",
                server.port());
    std::fflush(stdout);

    // The acceptor/readers/workers poll their own shutdown flags; this
    // thread only watches for a signal or a client-initiated drain.
    while (g_signal == 0 && !server.draining())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    if (g_signal != 0)
        std::fprintf(stderr, "dmt_served: signal %d, draining\n",
                     static_cast<int>(g_signal));
    server.requestDrain();
    server.join();

    std::fprintf(stderr, "dmt_served: drained; final stats %s\n",
                 server.statsJson().c_str());
    return 0;
}
