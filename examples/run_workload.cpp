/**
 * @file
 * Command-line workload runner: pick a suite benchmark, a thread
 * count, fetch ports and a retirement budget; prints the full
 * statistics block.  The closest thing to the paper's simulator
 * command line.
 *
 *     run_workload [workload] [threads] [ports] [max_retired]
 *     run_workload gcc 6 2 100000
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/log.hh"
#include "common/stats.hh"
#include "dmt/engine.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace dmt;

    const std::string name = argc > 1 ? argv[1] : "go";
    const int threads = argc > 2 ? std::atoi(argv[2]) : 6;
    const int ports = argc > 3 ? std::atoi(argv[3]) : 2;
    const u64 budget = argc > 4
        ? std::strtoull(argv[4], nullptr, 10) : 100000;

    if (name == "list" || name == "--help") {
        std::printf("workloads:\n");
        for (const WorkloadInfo &w : workloadSuite())
            std::printf("  %-10s mimics %-12s %s\n", w.name, w.mimics,
                        w.character);
        return 0;
    }

    SimConfig cfg =
        threads > 1 ? SimConfig::dmt(threads, ports)
                    : SimConfig::baseline();
    cfg.max_retired = budget;

    std::printf("running %s on %s ...\n", name.c_str(),
                cfg.summary().c_str());
    const Program prog = buildWorkload(name);
    DmtEngine engine(cfg, prog);
    try {
        engine.run();
    } catch (const SimError &err) {
        // A watchdog or invariant-audit panic: the post-mortem JSON has
        // already been written; exit cleanly with the diagnostic.
        std::fprintf(stderr, "run aborted: %s\n", err.what());
        return 1;
    }

    if (!engine.goldenOk()) {
        std::fprintf(stderr, "GOLDEN MISMATCH: %s\n",
                     engine.goldenError().c_str());
        return 1;
    }

    StatGroup group(name);
    engine.stats().registerAll(group);
    std::fputs(group.dump().c_str(), stdout);
    std::printf("%s.ipc %38.3f\n", name.c_str(), engine.stats().ipc());
    std::printf("golden check: PASS (%llu instructions verified)\n",
                static_cast<unsigned long long>(
                    engine.stats().retired.value()));
    return 0;
}
