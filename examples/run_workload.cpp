/**
 * @file
 * Command-line workload runner: pick a suite benchmark, a thread
 * count, fetch ports and a retirement budget; prints the full
 * statistics block.  The closest thing to the paper's simulator
 * command line.
 *
 *     run_workload [workload] [threads] [ports] [max_retired]
 *     run_workload gcc 6 2 100000
 *
 * `run_workload all ...` sweeps the entire suite through the parallel
 * scheduler (DMT_JOBS workers) and prints one summary line per
 * workload plus the sweep's throughput accounting.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/log.hh"
#include "common/stats.hh"
#include "dmt/engine.hh"
#include "exp/phase.hh"
#include "exp/sampled.hh"
#include "exp/sweep.hh"
#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace
{

/** Sampled runs reuse fast-forward checkpoints across jobs; show how
 *  well that worked.  Silent in detailed mode (all counters zero). */
void
reportCheckpointCache()
{
    const dmt::CheckpointCacheCounters c = dmt::checkpointCacheCounters();
    if (c.mem_hits + c.disk_hits + c.builds == 0)
        return;
    std::fprintf(stderr,
                 "checkpoint cache: %llu mem hit(s), %llu disk "
                 "hit(s), %llu built\n",
                 static_cast<unsigned long long>(c.mem_hits),
                 static_cast<unsigned long long>(c.disk_hits),
                 static_cast<unsigned long long>(c.builds));
}

/** Companion to the checkpoint-cache line: how often the (expensive)
 *  BBV profile pass was reused.  Silent unless phase sampling ran. */
void
reportPhaseCache()
{
    const dmt::PhaseCacheCounters c = dmt::phaseCacheCounters();
    if (c.hits + c.builds == 0)
        return;
    std::fprintf(stderr, "phase cache: %llu hit(s), %llu built\n",
                 static_cast<unsigned long long>(c.hits),
                 static_cast<unsigned long long>(c.builds));
}

/** Phase table for one phase-sampled result, mirroring the cache
 *  summary lines: one row per phase with its weight, representative
 *  interval and measured CPI. */
void
printPhaseTable(const dmt::RunResult &r)
{
    if (r.sampling.mode != "phase")
        return;
    std::fprintf(stderr,
                 "%s phases: k=%llu of %llu interval(s) x %llu instr "
                 "(weighted cpi %.4f +- %.4f)\n",
                 r.workload.c_str(),
                 static_cast<unsigned long long>(r.sampling.phase_k),
                 static_cast<unsigned long long>(
                     r.sampling.phase_intervals),
                 static_cast<unsigned long long>(
                     r.sampling.phase_interval),
                 r.sampling.cpi_mean, r.sampling.cpi_ci95);
    for (const dmt::PhaseCpi &ph : r.sampling.phases) {
        if (ph.measured) {
            std::fprintf(stderr,
                         "  phase %2u  weight %.4f  rep %6llu  "
                         "(pos %10llu)  cpi %.4f\n",
                         ph.id, ph.weight,
                         static_cast<unsigned long long>(ph.rep),
                         static_cast<unsigned long long>(ph.pos),
                         ph.cpi);
        } else {
            std::fprintf(stderr,
                         "  phase %2u  weight %.4f  rep %6llu  "
                         "(pos %10llu)  unmeasured\n",
                         ph.id, ph.weight,
                         static_cast<unsigned long long>(ph.rep),
                         static_cast<unsigned long long>(ph.pos));
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dmt;

    const std::string name = argc > 1 ? argv[1] : "go";
    const int threads = argc > 2 ? std::atoi(argv[2]) : 6;
    const int ports = argc > 3 ? std::atoi(argv[3]) : 2;
    const u64 budget = argc > 4
        ? std::strtoull(argv[4], nullptr, 10) : 100000;

    if (name == "list" || name == "--help") {
        std::printf("workloads:\n");
        for (const WorkloadInfo &w : workloadSuite())
            std::printf("  %-10s mimics %-12s %s\n", w.name, w.mimics,
                        w.character);
        std::printf("generated families "
                    "(gen:<family>:<seed>[:knob=value...]):\n");
        for (const GenFamilyInfo &f : genFamilies())
            std::printf("  %-10s %-25s %s\n", f.name, f.knobs,
                        f.character);
        std::printf("  knobs: alias depth entropy trips units, e.g. "
                    "gen:loopnest:7:trips=40:units=24\n");
        return 0;
    }

    SimConfig cfg =
        threads > 1 ? SimConfig::dmt(threads, ports)
                    : SimConfig::baseline();
    cfg.max_retired = budget;

    if (name == "all") {
        SweepRunner pool;
        for (const WorkloadInfo &w : workloadSuite())
            pool.add(cfg, w.name, budget);
        std::printf("sweeping %zu workloads on %s (%d worker(s))\n",
                    pool.size(), cfg.summary().c_str(),
                    pool.poolWidth());
        const auto &cells = pool.run();
        const auto &suite = workloadSuite();
        bool all_ok = true;
        for (size_t i = 0; i < cells.size(); ++i) {
            if (!cells[i].ok) {
                std::printf("  %-10s FAILED: %s\n", suite[i].name,
                            cells[i].error.c_str());
                all_ok = false;
                continue;
            }
            const RunResult &r = cells[i].result;
            std::printf("  %-10s %10llu cycles %10llu retired "
                        "ipc %.3f  %6.3fs %6.3f Minstr/s\n",
                        suite[i].name,
                        static_cast<unsigned long long>(r.cycles),
                        static_cast<unsigned long long>(r.retired),
                        r.ipc, r.wall_s, r.minstr_per_s);
        }
        const SweepStats &st = pool.stats();
        std::printf("sweep: %.2fs wall, %.2fs busy (%.2fx), "
                    "%.2f Minstr/s\n",
                    st.wall_seconds, st.busy_seconds,
                    st.parallelism(), st.throughput() / 1e6);
        for (size_t i = 0; i < cells.size(); ++i)
            if (cells[i].ok)
                printPhaseTable(cells[i].result);
        reportCheckpointCache();
        reportPhaseCache();
        return all_ok ? 0 : 1;
    }

    if (SampleParams::fromEnv().enabled()) {
        // Sampled single run: go through the runner funnel (which
        // applies DMT_SAMPLE) instead of a raw engine, so the sampled
        // summary — and in phase mode the phase table — is visible
        // from the command line.
        std::printf("running %s (sampled, DMT_SAMPLE=%s) on %s ...\n",
                    name.c_str(),
                    SampleParams::fromEnv().canonicalSpec().c_str(),
                    cfg.summary().c_str());
        RunResult r;
        try {
            r = runWorkload(cfg, name, budget);
        } catch (const SimError &err) {
            std::fprintf(stderr, "run aborted: %s\n", err.what());
            return 1;
        }
        StatGroup group(name);
        r.stats.registerAll(group);
        std::fputs(group.dump().c_str(), stdout);
        std::printf("%s.cpi_mean %34.4f\n", name.c_str(),
                    r.sampling.cpi_mean);
        std::printf("%s.cpi_ci95 %34.4f\n", name.c_str(),
                    r.sampling.cpi_ci95);
        std::printf("sampled: %llu window(s), %llu of %llu instr "
                    "detailed\n",
                    static_cast<unsigned long long>(
                        r.sampling.intervals),
                    static_cast<unsigned long long>(
                        r.sampling.covered
                        - r.sampling.functional_instr),
                    static_cast<unsigned long long>(
                        r.sampling.covered));
        printPhaseTable(r);
        reportCheckpointCache();
        reportPhaseCache();
        return 0;
    }

    std::printf("running %s on %s ...\n", name.c_str(),
                cfg.summary().c_str());
    const Program prog = buildWorkload(name);
    DmtEngine engine(cfg, prog);
    try {
        engine.run();
    } catch (const SimError &err) {
        // A watchdog or invariant-audit panic: the post-mortem JSON has
        // already been written; exit cleanly with the diagnostic.
        std::fprintf(stderr, "run aborted: %s\n", err.what());
        return 1;
    }

    if (!engine.goldenOk()) {
        std::fprintf(stderr, "GOLDEN MISMATCH: %s\n",
                     engine.goldenError().c_str());
        return 1;
    }

    StatGroup group(name);
    engine.stats().registerAll(group);
    std::fputs(group.dump().c_str(), stdout);
    std::printf("%s.ipc %38.3f\n", name.c_str(), engine.stats().ipc());
    std::printf("golden check: PASS (%llu instructions verified)\n",
                static_cast<unsigned long long>(
                    engine.stats().retired.value()));
    return 0;
}
