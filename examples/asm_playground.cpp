/**
 * @file
 * Assembler playground: assemble a source file (or a built-in demo),
 * disassemble it back, run it functionally and on the DMT machine.
 *
 *     asm_playground            # built-in demo
 *     asm_playground prog.s     # your own program
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "casm/assembler.hh"
#include "dmt/engine.hh"
#include "isa/disasm.hh"
#include "sim/functional.hh"

namespace
{

const char *kDemo = R"(
# Demo: hash a small table and report the result.
        .data
table:  .word 12, 99, 7, 1024, 3, 42, 68, 5
        .text
        la   $s0, table
        li   $s1, 8          # elements
        li   $s2, 0          # index
        li   $v0, 0          # hash
loop:   sll  $t0, $s2, 2
        add  $t0, $t0, $s0
        lw   $t1, 0($t0)
        jal  mix
        addi $s2, $s2, 1
        blt  $s2, $s1, loop
        out  $v0
        halt

mix:    sll  $t2, $v0, 5     # hash = hash*33 + value
        add  $v0, $v0, $t2
        add  $v0, $v0, $t1
        ret
)";

} // namespace

int
main(int argc, char **argv)
{
    using namespace dmt;

    std::string source = kDemo;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        source = ss.str();
    }

    const AsmResult result = assembleSource(source);
    if (!result.ok) {
        std::fprintf(stderr, "assembly failed:\n%s",
                     result.errorText().c_str());
        return 1;
    }
    const Program &prog = result.program;

    std::printf("assembled %zu instructions, %zu data bytes, "
                "%zu symbols\n\n",
                prog.text.size(), prog.data.size(),
                prog.symbols.size());
    for (size_t i = 0; i < prog.text.size(); ++i) {
        const Addr pc = Program::kTextBase + static_cast<Addr>(i) * 4;
        for (const auto &[name, addr] : prog.symbols) {
            if (addr == pc)
                std::printf("%s:\n", name.c_str());
        }
        std::printf("  0x%06x  %s\n", pc,
                    disassemble(prog.text[i], pc).c_str());
    }

    ArchState st;
    MainMemory mem;
    st.reset(prog);
    mem.loadProgram(prog);
    const u64 steps = runFunctional(st, mem, prog, 50'000'000);
    std::printf("\nfunctional run: %llu instructions, output:",
                static_cast<unsigned long long>(steps));
    for (u32 v : st.output)
        std::printf(" %u (0x%x)", v, v);
    std::printf("\n");

    DmtEngine engine(SimConfig::dmt(4, 2), prog);
    engine.run();
    std::printf("DMT run: %llu cycles, IPC %.2f, golden %s\n",
                static_cast<unsigned long long>(
                    engine.stats().cycles.value()),
                engine.stats().ipc(),
                engine.goldenOk() ? "PASS" : "FAIL");
    return 0;
}
