/**
 * @file
 * Thread anatomy: run a small recursive program on the DMT machine
 * with a retirement trace that shows which hardware thread contributed
 * every retired instruction — the clearest way to *see* dynamic
 * multithreading at work (threads spawned at calls, unwinding the
 * recursion one continuation per context).
 */

#include <cstdio>

#include "dmt/engine.hh"
#include "isa/disasm.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace dmt;

    const Program prog = mkFibRecursive(8);

    SimConfig cfg = SimConfig::dmt(4, 2);
    DmtEngine engine(cfg, prog);

    std::printf("retired stream of fib(8) on a 4-context DMT machine\n");
    std::printf("(column = hardware thread context that ran it)\n\n");
    std::printf("   %-10s t0          t1          t2          t3\n",
                "pc");

    int shown = 0;
    engine.retire_hook = [&](const TBEntry &entry, ThreadId tid) {
        if (shown >= 120) {
            if (shown == 120)
                std::printf("   ... (%s)\n", "truncated");
            ++shown;
            return;
        }
        ++shown;
        std::printf("   0x%06x %*s%s\n", entry.pc, 2 + 12 * tid, "",
                    disassemble(entry.inst, entry.pc).c_str());
    };
    engine.run();

    std::printf("\n%llu instructions retired in %llu cycles "
                "(IPC %.2f)\n",
                static_cast<unsigned long long>(
                    engine.stats().retired.value()),
                static_cast<unsigned long long>(
                    engine.stats().cycles.value()),
                engine.stats().ipc());
    std::printf("threads: %llu spawned, %llu joined, %llu squashed\n",
                static_cast<unsigned long long>(
                    engine.stats().threads_spawned.value()),
                static_cast<unsigned long long>(
                    engine.stats().threads_joined.value()),
                static_cast<unsigned long long>(
                    engine.stats().threads_squashed.value()));
    std::printf("recoveries: %llu walks re-dispatched %llu "
                "instructions\n",
                static_cast<unsigned long long>(
                    engine.stats().recoveries.value()),
                static_cast<unsigned long long>(
                    engine.stats().recovery_dispatches.value()));
    std::printf("golden check: %s\n",
                engine.goldenOk() ? "PASS" : "FAIL");
    return 0;
}
